package secpert

import (
	"fmt"
	"strings"

	"repro/internal/expert"
	"repro/internal/taint"
)

// defineRules installs the §4 policy:
//
//   - execution flow: check_execve (hardcoded / socket-originated /
//     rarely-executed process names);
//   - resource abuse: check_clone_count, check_clone_rate;
//   - information flow: check_write (the §4.3 source×target matrix)
//     plus the keylogger-style user-input rules motivated by
//     PWSteal.Tarno.Q (§2.1).
func (s *Secpert) defineRules() {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(s.eng.DefRule(s.ruleCheckExecve()))
	must(s.eng.DefRule(s.ruleCloneCount()))
	must(s.eng.DefRule(s.ruleCloneRate()))
	if !s.cfg.DisableInfoFlow {
		must(s.eng.DefRule(s.ruleCheckWrite()))
	}
	if s.cfg.EnableMemoryAbuse {
		must(s.eng.DefRule(s.ruleMemoryAbuse()))
	}
}

// bindAccess binds the slots every access rule needs.
func bindAccess(extra ...expert.SlotMatch) []expert.SlotMatch {
	base := []expert.SlotMatch{
		expert.S("resource_name", expert.Var("name")),
		expert.S("resource_origin_type", expert.Var("otypes")),
		expert.S("resource_origin_name", expert.Var("onames")),
		expert.S("time", expert.Var("time")),
		expert.S("frequency", expert.Var("freq")),
		expert.S("pid", expert.Var("pid")),
	}
	return append(base, extra...)
}

// ruleCheckExecve reproduces the paper's check_execve (Appendix A.2):
// warn when a new process's name is hardcoded (Low; Medium when the
// code is rarely executed) or originated from a socket (High).
func (s *Secpert) ruleCheckExecve() *expert.Rule {
	return &expert.Rule{
		Name:     "check_execve",
		Doc:      "check execve",
		Salience: 10,
		Patterns: []expert.Pattern{
			expert.P("system_call_access",
				bindAccess(expert.S("system_call_name", expert.Lit("SYS_execve")))...),
		},
		Tests: []func(*expert.Bindings) bool{
			func(b *expert.Bindings) bool {
				srcs := listsToSources(b.List("otypes"), b.List("onames"))
				if len(s.filterBinary(srcs)) > 0 || len(s.filterSocket(srcs)) > 0 {
					return true
				}
				// Cross-session escalation (§10 item 6): executing
				// a file a previous session created is suspicious
				// regardless of the name's provenance.
				if h := s.cfg.History; h != nil {
					if _, written := h.WrittenIn(b.Str("name")); written {
						return true
					}
				}
				return false
			},
		},
		Action: func(ctx *expert.Context, b *expert.Bindings) {
			srcs := listsToSources(b.List("otypes"), b.List("onames"))
			bins := s.filterBinary(srcs)
			socks := s.filterSocket(srcs)
			name := b.Str("name")
			rare := s.isRare(b.Int("freq"), b.Int("time"))

			sev := Low
			if rare {
				sev = Medium
			}
			if len(socks) > 0 {
				sev = High
			}
			var msg strings.Builder
			fmt.Fprintf(&msg, "Found SYS_execve call (%q)", name)
			switch {
			case len(socks) > 0:
				fmt.Fprintf(&msg, "\n    (%q) originated from %s", name, quoteList(socks))
			case len(bins) > 0:
				fmt.Fprintf(&msg, "\n    (%q) originated from %s", name, quoteList(bins))
			}
			if h := s.cfg.History; h != nil {
				if session, written := h.WrittenIn(name); written {
					sev = High
					fmt.Fprintf(&msg, "\n    %s", historyLine(name, session))
				}
			}
			if rare {
				msg.WriteString("\n    This code is rarely executed...")
			}
			s.warn(ctx, ExecutionFlow, sev, int(b.Int("pid")), uint64(b.Int("time")), msg.String())
		},
	}
}

// ruleMemoryAbuse is the §10-item-4 extension: a process tree whose
// heap has grown past the configured thresholds is draining OS
// resources (the Trojan.Vundo behaviour of §2.1).
func (s *Secpert) ruleMemoryAbuse() *expert.Rule {
	return &expert.Rule{
		Name:     "check_memory_abuse",
		Salience: 8,
		Patterns: []expert.Pattern{
			expert.P("system_call_access",
				expert.S("system_call_name", expert.Lit("SYS_brk")),
				expert.S("mem_bytes", expert.Var("mem")),
				expert.S("time", expert.Var("time")),
				expert.S("pid", expert.Var("pid")),
			),
		},
		Tests: []func(*expert.Bindings) bool{
			func(b *expert.Bindings) bool { return b.Int("mem") >= s.cfg.MemHighBytes },
		},
		Action: func(ctx *expert.Context, b *expert.Bindings) {
			mem := b.Int("mem")
			sev := Low
			key := "mem_high"
			detail := "The process is allocating a large amount of memory"
			if mem >= s.cfg.MemVeryHighBytes {
				sev = Medium
				key = "mem_very_high"
				detail = "The process is allocating a very large amount of memory"
			}
			if s.once[key] {
				return
			}
			s.once[key] = true
			msg := fmt.Sprintf("Found excessive memory allocation (%d bytes)\n    %s", mem, detail)
			s.warn(ctx, ResourceAbuse, sev, int(b.Int("pid")), uint64(b.Int("time")), msg)
		},
	}
}

func isCloneCall(v expert.Value) bool {
	return v == "SYS_clone" || v == "SYS_fork"
}

// ruleCloneCount is §4.2 rule 1: the number of new processes created
// is high — Low.
func (s *Secpert) ruleCloneCount() *expert.Rule {
	return &expert.Rule{
		Name:     "check_clone_count",
		Salience: 8,
		Patterns: []expert.Pattern{
			expert.P("system_call_access",
				expert.S("system_call_name", expert.Pred(isCloneCall)),
				expert.S("clone_count", expert.Var("count")),
				expert.S("time", expert.Var("time")),
				expert.S("pid", expert.Var("pid")),
			),
		},
		Tests: []func(*expert.Bindings) bool{
			func(b *expert.Bindings) bool { return b.Int("count") >= s.cfg.CloneCountHigh },
		},
		Action: func(ctx *expert.Context, b *expert.Bindings) {
			if s.once["clone_count"] {
				return
			}
			s.once["clone_count"] = true
			msg := "Found several SYS_clone calls\n    This call was frequent"
			s.warn(ctx, ResourceAbuse, Low, int(b.Int("pid")), uint64(b.Int("time")), msg)
		},
	}
}

// ruleCloneRate is §4.2 rule 2: the rate of new process creation is
// high — Medium.
func (s *Secpert) ruleCloneRate() *expert.Rule {
	return &expert.Rule{
		Name:     "check_clone_rate",
		Salience: 8,
		Patterns: []expert.Pattern{
			expert.P("system_call_access",
				expert.S("system_call_name", expert.Pred(isCloneCall)),
				expert.S("clone_rate", expert.Var("rate")),
				expert.S("time", expert.Var("time")),
				expert.S("pid", expert.Var("pid")),
			),
		},
		Tests: []func(*expert.Bindings) bool{
			func(b *expert.Bindings) bool { return b.Int("rate") >= s.cfg.CloneRateHigh },
		},
		Action: func(ctx *expert.Context, b *expert.Bindings) {
			if s.once["clone_rate"] {
				return
			}
			s.once["clone_rate"] = true
			msg := "Found several SYS_clone calls\n    This call was very frequent in a short period of time"
			s.warn(ctx, ResourceAbuse, Medium, int(b.Int("pid")), uint64(b.Int("time")), msg)
		},
	}
}

// finding is one information-flow conclusion about a write.
type finding struct {
	sev   Severity
	lines []string
}

// ruleCheckWrite implements the §4.3 information-flow matrix over
// write events. One write may yield several findings (the paper's
// pwsafe run emits one warning per data source), each reported as its
// own warning.
func (s *Secpert) ruleCheckWrite() *expert.Rule {
	return &expert.Rule{
		Name:     "check_write",
		Salience: 5,
		Patterns: []expert.Pattern{
			expert.P("system_call_io",
				expert.S("direction", expert.Lit("write")),
				expert.S("data_source_type", expert.Var("dtypes")),
				expert.S("data_source_name", expert.Var("dnames")),
				expert.S("resource_name", expert.Var("name")),
				expert.S("resource_type", expert.Var("rtype")),
				expert.S("resource_origin_type", expert.Var("otypes")),
				expert.S("resource_origin_name", expert.Var("onames")),
				expert.S("head", expert.Var("head")),
				expert.S("server", expert.Var("server")),
				expert.S("server_addr", expert.Var("saddr")),
				expert.S("server_origin_type", expert.Var("sotypes")),
				expert.S("server_origin_name", expert.Var("sonames")),
				expert.S("time", expert.Var("time")),
				expert.S("frequency", expert.Var("freq")),
				expert.S("pid", expert.Var("pid")),
			),
		},
		Tests: []func(*expert.Bindings) bool{
			// Writes to the console are the program talking to its
			// user, not an information-flow target.
			func(b *expert.Bindings) bool {
				n := b.Str("name")
				return n != "stdout" && n != "stderr"
			},
		},
		Action: func(ctx *expert.Context, b *expert.Bindings) {
			findings := s.analyzeWrite(b)
			for _, f := range findings {
				msg := strings.Join(f.lines, "\n    ")
				s.warn(ctx, InformationFlow, f.sev, int(b.Int("pid")), uint64(b.Int("time")), msg)
			}
		},
	}
}

// analyzeWrite derives findings from one write event's bindings.
func (s *Secpert) analyzeWrite(b *expert.Bindings) []finding {
	data := listsToSources(b.List("dtypes"), b.List("dnames"))
	target := b.Str("name")
	targetIsSock := b.Str("rtype") == taint.Socket.String()
	tClass, tSupport := s.classifyOrigin(listsToSources(b.List("otypes"), b.List("onames")))
	isServer := b.Str("server") == "yes"
	if isServer {
		// A connection accepted from the network is remote-directed:
		// writing to it reaches whoever connected (paper §8.3.6).
		tClass = originRemote
	}

	targetDisp := target
	if targetIsSock {
		targetDisp += " (AF_INET)"
	}

	var out []finding
	add := func(sev Severity, lines []string) {
		if isServer {
			sLines := s.serverContext(b)
			lines = append(lines, sLines...)
		}
		if s.isRare(b.Int("freq"), b.Int("time")) {
			lines = append(lines, "This code is rarely executed...")
		}
		out = append(out, finding{sev: sev, lines: lines})
	}

	targetLine := func() string {
		switch {
		case tClass == originRemote && isServer:
			return "" // the server-context lines explain the endpoint
		case tClass == originRemote:
			return fmt.Sprintf("the name of the target %s originated from a socket %s", target, quoteList(tSupport))
		case tClass == originHardcoded && targetIsSock:
			return fmt.Sprintf("target (client) socket-name was hardcoded in: %s", quoteList(tSupport))
		case tClass == originHardcoded:
			return fmt.Sprintf("target file-name was hardcoded in: %s", quoteList(tSupport))
		case tClass == originUser && targetIsSock:
			return "target socket-name was given by the user"
		case tClass == originUser:
			return "target file-name was given by the user"
		}
		return ""
	}

	// pairSeverity is the §4.3 matrix for flows between two named
	// resources: both hardcoded (or any remote) → High; exactly one
	// given by the user → Low; both from the user → benign.
	pairSeverity := func(src originClass) (Severity, bool) {
		if src == originRemote || tClass == originRemote {
			return High, true
		}
		switch {
		case src == originHardcoded && tClass == originHardcoded:
			return High, true
		case src == originHardcoded && tClass == originUser:
			return Low, true
		case src == originUser && tClass == originHardcoded:
			return Low, true
		}
		return Low, false
	}

	appendNonEmpty := func(lines []string, extra ...string) []string {
		for _, e := range extra {
			if e != "" {
				lines = append(lines, e)
			}
		}
		return lines
	}

	// 1. Data read from files (paper §4.3 rule 1 and its mirrors).
	for _, name := range namesOfType(data, taint.File) {
		if name == "stdin" {
			continue
		}
		wide := name == taint.WideName
		srcClass, srcSupport := s.classifyOrigin(s.origins[name])
		if wide && srcClass == originUnknown {
			// The monitor summarized this tag under its width
			// budget, so the file's identity — and with it the
			// name-origin record — is gone. Soundness requires the
			// worst-case assumption: classify as remote so the
			// degraded run over-warns rather than losing the flow.
			srcClass = originRemote
			srcSupport = nil
		}
		sev, warnIt := pairSeverity(srcClass)
		if !warnIt {
			continue
		}
		lines := []string{fmt.Sprintf("Found Write call Data Flowing From: %s To: %s", name, targetDisp)}
		switch {
		case wide:
			lines = append(lines, "source file identity was summarized away (taint width budget); assuming the worst case")
		case srcClass == originHardcoded:
			lines = append(lines, fmt.Sprintf("source filename was hardcoded in: %s", quoteList(srcSupport)))
		case srcClass == originUser:
			lines = append(lines, "source filename was given by the user")
		case srcClass == originRemote:
			lines = append(lines, fmt.Sprintf("source filename originated from a socket %s", quoteList(srcSupport)))
		}
		lines = appendNonEmpty(lines, targetLine())
		add(sev, lines)
	}

	// 2. Data received from sockets (downloaded content; e.g.
	// Trojan.Lodeight downloads a remote file and drops it, §2.1).
	for _, name := range namesOfType(data, taint.Socket) {
		srcClass, srcSupport := s.classifyOrigin(s.origins[name])
		if srcClass == originUnknown {
			// A connection we cannot attribute to the user is
			// remote-initiated.
			srcClass = originRemote
			srcSupport = []string{name}
		}
		sev, warnIt := pairSeverity(srcClass)
		if !warnIt {
			continue
		}
		lines := []string{fmt.Sprintf("Found Write call Data Flowing From: %s (AF_INET) To: %s", name, targetDisp)}
		switch srcClass {
		case originHardcoded:
			lines = append(lines, fmt.Sprintf("source socket-address was hardcoded in: %s", quoteList(srcSupport)))
		case originUser:
			lines = append(lines, "source socket-address was given by the user")
		case originRemote:
			lines = append(lines, "the data was received from a remote connection")
		}
		lines = appendNonEmpty(lines, targetLine())
		// Content analysis (§10 item 5): a downloaded payload that
		// looks executable, dropped to a file, escalates.
		if s.cfg.EnableContentAnalysis && !targetIsSock {
			if kind, executable := classifyContent(b.Str("head")); executable {
				sev = High
				lines = append(lines, fmt.Sprintf(
					"the downloaded content appears to be executable (%s)", kind))
			}
		}
		add(sev, lines)
	}

	// 3. Hardcoded (binary) data (§8.3: grabem, vixie, superforker,
	// the Tic-Tac-Toe trojan; pwsafe's Low socket warnings).
	if bins := s.filterBinary(data); len(bins) > 0 && tClass != originUser && tClass != originUnknown {
		if targetIsSock {
			sev := Low
			if tClass == originRemote {
				sev = High
			}
			for _, bin := range bins {
				lines := []string{fmt.Sprintf("Found Write call Data Flowing From: %s To: %s", bin, targetDisp)}
				lines = appendNonEmpty(lines, targetLine())
				add(sev, lines)
			}
		} else {
			lines := []string{
				fmt.Sprintf("Found Write call to %s", target),
				fmt.Sprintf("The Data written to this file is originated from the BINARY:%s", quoteList(bins)),
			}
			if tClass == originHardcoded {
				lines = append(lines, fmt.Sprintf(
					"Moreover, it seems that the name of the file: %s originated from a BINARY: %s",
					target, quoteList(tSupport)))
			} else {
				lines = appendNonEmpty(lines, targetLine())
			}
			add(High, lines)
		}
	}

	// 4. Hardware-sourced data (§4.3 rule 2: HARDWARE → hardcoded
	// file is High; exfiltrating it to a hardcoded or remote socket
	// is at least as bad).
	if hasType(data, taint.Hardware) && (tClass == originHardcoded || tClass == originRemote) {
		lines := []string{
			fmt.Sprintf("Found Write call to %s", targetDisp),
			"The Data written originated from the HARDWARE",
		}
		lines = appendNonEmpty(lines, targetLine())
		add(High, lines)
	}

	// 5. User input captured to a hardcoded destination (the
	// PWSteal.Tarno.Q pattern, §2.1: keystrokes to a predefined file
	// or address).
	if hasType(data, taint.UserInput) && tClass == originHardcoded {
		sev := Medium
		if targetIsSock {
			sev = High
		}
		lines := []string{
			fmt.Sprintf("Found Write call to %s", targetDisp),
			"The Data written originated from USER INPUT",
		}
		lines = appendNonEmpty(lines, targetLine())
		add(sev, lines)
	}

	return out
}

// classifyContent recognizes executable payload signatures for the
// content-analysis extension: ELF, shebang scripts, and PE ("the
// detection itself does not need to be based on the suffix, analyzing
// the content itself may be more accurate", §10 item 5).
func classifyContent(head string) (kind string, executable bool) {
	switch {
	case strings.HasPrefix(head, "\x7fELF"):
		return "ELF binary", true
	case strings.HasPrefix(head, "#!"):
		return "script with interpreter line", true
	case strings.HasPrefix(head, "MZ"):
		return "PE binary", true
	}
	return "", false
}

// serverContext renders the pma-style server lines (§8.3.6).
func (s *Secpert) serverContext(b *expert.Bindings) []string {
	saddr := b.Str("saddr")
	sClass, sSupport := s.classifyOrigin(listsToSources(b.List("sotypes"), b.List("sonames")))
	lines := []string{fmt.Sprintf(
		"This program has opened a socket for remote connections. i.e. it is a server with the address: %s (AF_INET)", saddr)}
	switch sClass {
	case originHardcoded:
		lines = append(lines, fmt.Sprintf("the server address was hardcoded in: %s", quoteList(sSupport)))
	case originUser:
		lines = append(lines, "the server address was given by the user")
	}
	return lines
}
