package secpert

import (
	"repro/internal/events"
	"repro/internal/expert"
)

// defineTemplates registers the fact shapes of paper Appendix A.1:
// system_call_access for resource accesses and system_call_io for
// data transfers.
func (s *Secpert) defineTemplates() {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(s.eng.DefTemplate(&expert.Template{
		Name: "system_call_access",
		Slots: []expert.SlotDef{
			{Name: "system_call_name"},
			{Name: "resource_name"},
			{Name: "resource_type"},
			{Name: "resource_origin_name", Multi: true},
			{Name: "resource_origin_type", Multi: true},
			{Name: "time", Default: int64(0)},
			{Name: "frequency", Default: int64(0)},
			{Name: "address", Default: ""},
			{Name: "pid", Default: int64(0)},
			{Name: "clone_count", Default: int64(0)},
			{Name: "clone_rate", Default: int64(0)},
			{Name: "mem_bytes", Default: int64(0)},
		},
	}))
	must(s.eng.DefTemplate(&expert.Template{
		Name: "system_call_io",
		Slots: []expert.SlotDef{
			{Name: "system_call_name"},
			{Name: "direction"},
			{Name: "data_source_type", Multi: true},
			{Name: "data_source_name", Multi: true},
			{Name: "resource_name"},
			{Name: "resource_type"},
			{Name: "resource_origin_name", Multi: true},
			{Name: "resource_origin_type", Multi: true},
			{Name: "head", Default: ""},
			{Name: "server", Default: "no"},
			{Name: "server_addr", Default: ""},
			{Name: "server_origin_name", Multi: true},
			{Name: "server_origin_type", Multi: true},
			{Name: "time", Default: int64(0)},
			{Name: "frequency", Default: int64(0)},
			{Name: "address", Default: ""},
			{Name: "pid", Default: int64(0)},
		},
	}))
}

// accessSlots converts an Access event into fact slots.
func accessSlots(ev *events.Access) map[string]expert.Value {
	types, names := sourceLists(ev.Resource.Origin)
	return map[string]expert.Value{
		"system_call_name":     ev.Call,
		"resource_name":        ev.Resource.Name,
		"resource_type":        ev.Resource.Type.String(),
		"resource_origin_name": names,
		"resource_origin_type": types,
		"time":                 int64(ev.Time),
		"frequency":            ev.Freq,
		"address":              ev.Addr,
		"pid":                  int64(ev.PID),
		"clone_count":          ev.CloneCount,
		"clone_rate":           ev.CloneRate,
		"mem_bytes":            ev.MemBytes,
	}
}

// ioSlots converts an IO event into fact slots.
func ioSlots(ev *events.IO) map[string]expert.Value {
	dTypes, dNames := sourceLists(ev.Data)
	oTypes, oNames := sourceLists(ev.Resource.Origin)
	sTypes, sNames := sourceLists(ev.ServerOrigin)
	server := "no"
	if ev.Server {
		server = "yes"
	}
	return map[string]expert.Value{
		"system_call_name":     ev.Call,
		"direction":            ev.Dir.String(),
		"data_source_type":     dTypes,
		"data_source_name":     dNames,
		"resource_name":        ev.Resource.Name,
		"resource_type":        ev.Resource.Type.String(),
		"resource_origin_name": oNames,
		"resource_origin_type": oTypes,
		"head":                 string(ev.Head),
		"server":               server,
		"server_addr":          ev.ServerAddr,
		"server_origin_name":   sNames,
		"server_origin_type":   sTypes,
		"time":                 int64(ev.Time),
		"frequency":            ev.Freq,
		"address":              ev.Addr,
		"pid":                  int64(ev.PID),
	}
}
