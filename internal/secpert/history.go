package secpert

import (
	"fmt"
	"strings"
)

// History is Secpert's cross-session memory (paper §10, future work
// items 6 and 8): it records which files monitored programs created
// in previous sessions — so that a file downloaded in one execution
// and executed in a later one escalates to High — and which warnings
// the user explicitly approved, which are suppressed on repetition to
// reduce false positives.
//
// A History outlives individual Secpert instances: create one, pass
// it through Config.History to every session, and call
// Secpert.FinishSession at the end of each run to commit the
// session's observations.
type History struct {
	// writtenFiles maps file path -> the session ordinal that wrote
	// it (for the explanation line).
	writtenFiles map[string]int
	// approved holds keys of warnings the user allowed.
	approved map[string]bool
	sessions int
}

// NewHistory returns an empty cross-session memory.
func NewHistory() *History {
	return &History{
		writtenFiles: make(map[string]int),
		approved:     make(map[string]bool),
	}
}

// Sessions returns how many sessions have been committed.
func (h *History) Sessions() int { return h.sessions }

// WrittenIn reports whether a previous session wrote the file, and in
// which session.
func (h *History) WrittenIn(path string) (int, bool) {
	s, ok := h.writtenFiles[path]
	return s, ok
}

// warningKey canonicalizes a warning for approval matching: the rule
// plus the message head.
func warningKey(w *Warning) string {
	head := w.Message
	if i := strings.IndexByte(head, '\n'); i >= 0 {
		head = head[:i]
	}
	return w.Rule + "|" + head
}

// Approve records the user's decision to allow this warning; future
// sessions suppress identical warnings (future work item 8: "reduce
// the number of false positives ... using user feedback and an
// adaptive policy").
func (h *History) Approve(w *Warning) {
	h.approved[warningKey(w)] = true
}

// Approved reports whether an identical warning was approved before.
func (h *History) Approved(w *Warning) bool {
	return h.approved[warningKey(w)]
}

// commit merges one session's observations.
func (h *History) commit(files []string) {
	h.sessions++
	for _, f := range files {
		if _, seen := h.writtenFiles[f]; !seen {
			h.writtenFiles[f] = h.sessions
		}
	}
}

// FinishSession commits this run's observations into the configured
// History. Call once, after the guest finished. Safe to call without
// a History configured.
func (s *Secpert) FinishSession() {
	if s.cfg.History == nil {
		return
	}
	s.cfg.History.commit(s.sessionWrites)
	s.sessionWrites = nil
}

// Suppressed returns how many warnings were silenced by prior user
// approval this session.
func (s *Secpert) Suppressed() int { return s.suppressed }

// historyLine renders the escalation explanation for check_execve.
func historyLine(path string, session int) string {
	return fmt.Sprintf(
		"%s was created by a monitored program in a previous session (session %d)", path, session)
}
