package secpert

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/expert"
	"repro/internal/taint"
)

// TestAppendixA1FactShape reproduces the fact of paper Appendix A.1:
// the execve.exe micro benchmark's system_call_access fact, with the
// CLIPS rendering.
func TestAppendixA1FactShape(t *testing.T) {
	s := newSecpert()
	ev := &events.Access{
		Call: "SYS_execve",
		PID:  1,
		Resource: events.Ref{
			Name: "/bin/ls",
			Type: taint.File,
			Origin: []taint.Source{{
				Type: taint.Binary,
				Name: "/proj/arch4/mmoffie/PIN/MicroBenchmarks/execve/execve.exe",
			}},
		},
		Time: 33, Freq: 1, Addr: "8048403",
	}
	// Capture the asserted fact before it is retracted.
	var rendered string
	err := s.Engine().DefRule(&expert.Rule{
		Name:     "capture",
		Salience: 100,
		Patterns: []expert.Pattern{expert.PBind("f", "system_call_access")},
		Action: func(ctx *expert.Context, b *expert.Bindings) {
			rendered = b.Fact("f").String()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.HandleAccess(ev)
	for _, want := range []string{
		"(system_call_access",
		"(system_call_name SYS_execve)",
		`(resource_name "/bin/ls")`,
		"(resource_type FILE)",
		`(resource_origin_name ("/proj/arch4/mmoffie/PIN/MicroBenchmarks/execve/execve.exe"))`,
		"(resource_origin_type (BINARY))",
		"(time 33)",
		"(frequency 1)",
		`(address "8048403")`,
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("fact rendering missing %q:\n%s", want, rendered)
		}
	}
}

// TestAppendixA3FireTrace reproduces the firing transcript of Appendix
// A.3: the check_execve rule fires on the fact, prints the FIRE line
// and the [LOW] warning with the originating binary.
func TestAppendixA3FireTrace(t *testing.T) {
	s := newSecpert()
	var out bytes.Buffer
	s.SetOutput(&out)
	s.HandleAccess(&events.Access{
		Call: "SYS_execve",
		PID:  1,
		Resource: events.Ref{
			Name: "/bin/ls",
			Type: taint.File,
			Origin: []taint.Source{{
				Type: taint.Binary,
				Name: "/proj/arch4/mmoffie/PIN/MicroBenchmarks/execve/execve.exe",
			}},
		},
		Time: 33, Freq: 1, Addr: "8048403",
	})
	got := out.String()
	for _, want := range []string{
		"FIRE 1 check_execve: f-",
		`Warning [LOW] Found SYS_execve call ("/bin/ls")`,
		`("/bin/ls") originated from ("/proj/arch4/mmoffie/PIN/MicroBenchmarks/execve/execve.exe")`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("transcript missing %q:\n%s", want, got)
		}
	}
}

// TestAppendixA2RuleConditions verifies the two condition legs of the
// A.2 rule: the severity moves Low -> Medium with rarity and -> High
// with a socket origin, exactly as the rule's bind logic reads.
func TestAppendixA2RuleConditions(t *testing.T) {
	mk := func(freq, time int64, origin taint.Source) Severity {
		s := newSecpert()
		s.HandleAccess(&events.Access{
			Call:     "SYS_execve",
			Resource: events.Ref{Name: "/bin/ls", Type: taint.File, Origin: []taint.Source{origin}},
			Time:     uint64(time), Freq: freq,
		})
		ws := s.Warnings()
		if len(ws) != 1 {
			t.Fatalf("warnings = %v", ws)
		}
		return ws[0].Severity
	}
	bin := taint.Source{Type: taint.Binary, Name: "execve.exe"}
	sock := taint.Source{Type: taint.Socket, Name: "remote:1"}
	if got := mk(10, 100_000, bin); got != Low {
		t.Errorf("frequent hardcoded = %v, want Low", got)
	}
	if got := mk(1, 100_000, bin); got != Medium {
		t.Errorf("rare hardcoded = %v, want Medium", got)
	}
	if got := mk(10, 100_000, sock); got != High {
		t.Errorf("socket origin = %v, want High", got)
	}
}
