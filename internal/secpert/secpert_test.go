package secpert

import (
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/taint"
)

func newSecpert() *Secpert { return New(DefaultConfig(), nil) }

func src(t taint.SourceType, name string) taint.Source {
	return taint.Source{Type: t, Name: name}
}

func execveEvent(origin ...taint.Source) *events.Access {
	return &events.Access{
		Call: "SYS_execve",
		PID:  1,
		Resource: events.Ref{
			Name: "/bin/ls", Type: taint.File, Origin: origin,
		},
		Time: 100, Freq: 5, Addr: "8048403",
	}
}

func TestExecveHardcodedLow(t *testing.T) {
	s := newSecpert()
	s.HandleAccess(execveEvent(src(taint.Binary, "/bin/evil")))
	ws := s.Warnings()
	if len(ws) != 1 {
		t.Fatalf("warnings = %d", len(ws))
	}
	if ws[0].Severity != Low || ws[0].Rule != "check_execve" {
		t.Errorf("warning = %+v", ws[0])
	}
	if !strings.Contains(ws[0].Message, `Found SYS_execve call ("/bin/ls")`) ||
		!strings.Contains(ws[0].Message, `originated from ("/bin/evil")`) {
		t.Errorf("message = %q", ws[0].Message)
	}
}

func TestExecveUserInputNoWarning(t *testing.T) {
	s := newSecpert()
	s.HandleAccess(execveEvent(src(taint.UserInput, "argv")))
	if len(s.Warnings()) != 0 {
		t.Errorf("warnings = %v", s.Warnings())
	}
}

func TestExecveTrustedBinaryFiltered(t *testing.T) {
	// The ElmExploit case: system() passes "/bin/sh" whose string
	// lives in libc.so, which is trusted — no warning (§8.3.1).
	s := newSecpert()
	s.HandleAccess(execveEvent(src(taint.Binary, "libc.so")))
	if len(s.Warnings()) != 0 {
		t.Errorf("trusted binary warned: %v", s.Warnings())
	}
}

func TestExecveSocketHigh(t *testing.T) {
	s := newSecpert()
	s.HandleAccess(execveEvent(src(taint.Socket, "evil.example:6667")))
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != High {
		t.Fatalf("warnings = %v", ws)
	}
	if !strings.Contains(ws[0].Message, `originated from ("evil.example:6667")`) {
		t.Errorf("message = %q", ws[0].Message)
	}
}

func TestExecveRareMedium(t *testing.T) {
	s := newSecpert()
	ev := execveEvent(src(taint.Binary, "/bin/evil"))
	ev.Freq = 1
	ev.Time = 50_000 // past LongTime
	s.HandleAccess(ev)
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != Medium {
		t.Fatalf("warnings = %v", ws)
	}
	if !strings.Contains(ws[0].Message, "rarely executed") {
		t.Errorf("message = %q", ws[0].Message)
	}
}

func TestExecveFrequentNotRare(t *testing.T) {
	s := newSecpert()
	ev := execveEvent(src(taint.Binary, "/bin/evil"))
	ev.Freq = 100
	ev.Time = 50_000
	s.HandleAccess(ev)
	if ws := s.Warnings(); len(ws) != 1 || ws[0].Severity != Low {
		t.Fatalf("warnings = %v", ws)
	}
}

func TestExecveEarlyRareStillLow(t *testing.T) {
	// Rare code at program start is normal (initialization); the
	// LongTime condition keeps it Low.
	s := newSecpert()
	ev := execveEvent(src(taint.Binary, "/bin/evil"))
	ev.Freq = 1
	ev.Time = 10
	s.HandleAccess(ev)
	if ws := s.Warnings(); len(ws) != 1 || ws[0].Severity != Low {
		t.Fatalf("warnings = %v", ws)
	}
}

func cloneEvent(count, rate int64) *events.Access {
	return &events.Access{
		Call: "SYS_clone", PID: 1, Time: 100,
		CloneCount: count, CloneRate: rate,
	}
}

func TestCloneCountLow(t *testing.T) {
	s := newSecpert()
	s.HandleAccess(cloneEvent(3, 1))
	if len(s.Warnings()) != 0 {
		t.Fatal("warned below threshold")
	}
	s.HandleAccess(cloneEvent(8, 1))
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != Low || ws[0].Category != ResourceAbuse {
		t.Fatalf("warnings = %v", ws)
	}
	// Dedupe: further clones do not repeat the warning.
	s.HandleAccess(cloneEvent(9, 1))
	if len(s.Warnings()) != 1 {
		t.Error("clone count warning repeated")
	}
}

func TestCloneRateMedium(t *testing.T) {
	s := newSecpert()
	s.HandleAccess(cloneEvent(9, 9))
	sevs := map[Severity]int{}
	for _, w := range s.Warnings() {
		sevs[w.Severity]++
	}
	if sevs[Low] != 1 || sevs[Medium] != 1 {
		t.Fatalf("warnings = %v", s.Warnings())
	}
	if !strings.Contains(s.Warnings()[1].Message, "very frequent in a short period") &&
		!strings.Contains(s.Warnings()[0].Message, "very frequent in a short period") {
		t.Error("rate message missing")
	}
}

// openFile records a file's name provenance via an open event.
func openFile(s *Secpert, name string, origin ...taint.Source) {
	s.HandleAccess(&events.Access{
		Call: "SYS_open", PID: 1,
		Resource: events.Ref{Name: name, Type: taint.File, Origin: origin},
		Time:     50,
	})
}

func writeEvent(target string, targetType taint.SourceType, targetOrigin []taint.Source, data ...taint.Source) *events.IO {
	return &events.IO{
		Call: "SYS_write", PID: 1, Dir: events.Write,
		Data: data,
		Resource: events.Ref{
			Name: target, Type: targetType, Origin: targetOrigin,
		},
		Time: 200, Freq: 5,
	}
}

func TestBinaryToHardcodedFileHigh(t *testing.T) {
	// grabem / vixie / superforker shape (§8.3).
	s := newSecpert()
	s.HandleIO(writeEvent(".exrc%", taint.File,
		[]taint.Source{src(taint.Binary, "/bin/grabem")},
		src(taint.Binary, "/bin/grabem")))
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != High {
		t.Fatalf("warnings = %v", ws)
	}
	m := ws[0].Message
	if !strings.Contains(m, "Found Write call to .exrc%") ||
		!strings.Contains(m, `The Data written to this file is originated from the BINARY:("/bin/grabem")`) ||
		!strings.Contains(m, "Moreover, it seems that the name of the file: .exrc%") {
		t.Errorf("message = %q", m)
	}
}

func TestBinaryToUserFileNoWarning(t *testing.T) {
	s := newSecpert()
	s.HandleIO(writeEvent("out.txt", taint.File,
		[]taint.Source{src(taint.UserInput, "argv")},
		src(taint.Binary, "/bin/app")))
	if len(s.Warnings()) != 0 {
		t.Errorf("warnings = %v", s.Warnings())
	}
}

func TestBinaryToHardcodedSocketLow(t *testing.T) {
	// pwsafe's modified build: library data to a hardcoded server
	// (§8.4.1) — Low.
	s := newSecpert()
	s.HandleIO(writeEvent("duero:40400", taint.Socket,
		[]taint.Source{src(taint.Binary, "/bin/pwsafe")},
		src(taint.Binary, "/lib/libcrypto.so.4")))
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != Low {
		t.Fatalf("warnings = %v", ws)
	}
	m := ws[0].Message
	if !strings.Contains(m, "Data Flowing From: /lib/libcrypto.so.4 To: duero:40400 (AF_INET)") ||
		!strings.Contains(m, "target (client) socket-name was hardcoded in:") {
		t.Errorf("message = %q", m)
	}
}

func TestFileToSocketMatrix(t *testing.T) {
	cases := []struct {
		name                   string
		fileOrigin, sockOrigin taint.Source
		wantSev                Severity
		wantWarn               bool
	}{
		{"user-user", src(taint.UserInput, "argv"), src(taint.UserInput, "argv"), Low, false},
		{"user-hard", src(taint.UserInput, "argv"), src(taint.Binary, "/bin/x"), Low, true},
		{"hard-user", src(taint.Binary, "/bin/x"), src(taint.UserInput, "argv"), Low, true},
		{"hard-hard", src(taint.Binary, "/bin/x"), src(taint.Binary, "/bin/x"), High, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newSecpert()
			openFile(s, "/data/f", tc.fileOrigin)
			s.HandleIO(writeEvent("host:99", taint.Socket,
				[]taint.Source{tc.sockOrigin},
				src(taint.File, "/data/f")))
			ws := s.Warnings()
			if tc.wantWarn {
				if len(ws) != 1 || ws[0].Severity != tc.wantSev {
					t.Fatalf("warnings = %v", ws)
				}
				if !strings.Contains(ws[0].Message, "Data Flowing From: /data/f To: host:99") {
					t.Errorf("message = %q", ws[0].Message)
				}
			} else if len(ws) != 0 {
				t.Fatalf("unexpected warnings = %v", ws)
			}
		})
	}
}

func TestFileToFileMatrix(t *testing.T) {
	s := newSecpert()
	openFile(s, "/data/f", src(taint.Binary, "/bin/x"))
	s.HandleIO(writeEvent("/tmp/copy", taint.File,
		[]taint.Source{src(taint.Binary, "/bin/x")},
		src(taint.File, "/data/f")))
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != High {
		t.Fatalf("hard-hard file copy: %v", ws)
	}
}

func TestSocketToHardcodedFileHigh(t *testing.T) {
	// Trojan.Lodeight shape: downloaded data dropped to a hardcoded
	// path (§2.1).
	s := newSecpert()
	s.HandleAccess(&events.Access{
		Call: "SYS_socketcall:connect", PID: 1,
		Resource: events.Ref{Name: "evil:80", Type: taint.Socket,
			Origin: []taint.Source{src(taint.Binary, "/bin/dl")}},
	})
	s.HandleIO(writeEvent("/tmp/payload", taint.File,
		[]taint.Source{src(taint.Binary, "/bin/dl")},
		src(taint.Socket, "evil:80")))
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != High {
		t.Fatalf("warnings = %v", ws)
	}
	if !strings.Contains(ws[0].Message, "source socket-address was hardcoded in:") {
		t.Errorf("message = %q", ws[0].Message)
	}
}

func TestHardwareToHardcodedFileHigh(t *testing.T) {
	s := newSecpert()
	s.HandleIO(writeEvent("/tmp/hwinfo", taint.File,
		[]taint.Source{src(taint.Binary, "/bin/x")},
		src(taint.Hardware, "cpuid")))
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != High {
		t.Fatalf("warnings = %v", ws)
	}
	if !strings.Contains(ws[0].Message, "HARDWARE") {
		t.Errorf("message = %q", ws[0].Message)
	}
}

func TestHardwareToUserFileNoWarning(t *testing.T) {
	s := newSecpert()
	s.HandleIO(writeEvent("out", taint.File,
		[]taint.Source{src(taint.UserInput, "argv")},
		src(taint.Hardware, "cpuid")))
	if len(s.Warnings()) != 0 {
		t.Errorf("warnings = %v", s.Warnings())
	}
}

func TestUserInputToHardcodedSocketHigh(t *testing.T) {
	// PWSteal pattern: keystrokes to a predefined address (§2.1).
	s := newSecpert()
	s.HandleIO(writeEvent("attacker:80", taint.Socket,
		[]taint.Source{src(taint.Binary, "/bin/steal")},
		src(taint.UserInput, "stdin")))
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != High {
		t.Fatalf("warnings = %v", ws)
	}
}

func TestUserInputToHardcodedFileMedium(t *testing.T) {
	s := newSecpert()
	s.HandleIO(writeEvent(".exrc%", taint.File,
		[]taint.Source{src(taint.Binary, "/bin/grab")},
		src(taint.UserInput, "stdin")))
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != Medium {
		t.Fatalf("warnings = %v", ws)
	}
}

func TestStdoutWritesNeverWarn(t *testing.T) {
	s := newSecpert()
	openFile(s, "/data/f", src(taint.Binary, "/bin/x"))
	s.HandleIO(writeEvent("stdout", taint.File, nil,
		src(taint.File, "/data/f"), src(taint.Binary, "/bin/x")))
	if len(s.Warnings()) != 0 {
		t.Errorf("stdout warned: %v", s.Warnings())
	}
}

func TestServerContextLines(t *testing.T) {
	// pma shape: hardcoded-named file data flowing to an accepted
	// connection (§8.3.6) — High, with the server context lines.
	s := newSecpert()
	openFile(s, "outpipe32425", src(taint.Binary, "/bin/pmad"))
	ev := writeEvent("gateway:36982", taint.Socket, nil,
		src(taint.File, "outpipe32425"))
	ev.Server = true
	ev.ServerAddr = "LocalHost:11116"
	ev.ServerOrigin = []taint.Source{src(taint.Binary, "/bin/pmad")}
	s.HandleIO(ev)
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Severity != High {
		t.Fatalf("warnings = %v", ws)
	}
	m := ws[0].Message
	if !strings.Contains(m, "Data Flowing From: outpipe32425 To: gateway:36982 (AF_INET)") ||
		!strings.Contains(m, "it is a server with the address: LocalHost:11116 (AF_INET)") ||
		!strings.Contains(m, `the server address was hardcoded in: ("/bin/pmad")`) {
		t.Errorf("message = %q", m)
	}
}

func TestReadsDoNotWarn(t *testing.T) {
	s := newSecpert()
	ev := writeEvent("/f", taint.File,
		[]taint.Source{src(taint.Binary, "/bin/x")},
		src(taint.Binary, "/bin/x"))
	ev.Dir = events.Read
	s.HandleIO(ev)
	if len(s.Warnings()) != 0 {
		t.Errorf("read warned: %v", s.Warnings())
	}
}

func TestAdvisorKill(t *testing.T) {
	s := New(DefaultConfig(), KillAtOrAbove(High))
	d := s.HandleAccess(execveEvent(src(taint.Socket, "evil:1")))
	if d != Terminate {
		t.Error("High warning did not terminate with KillAtOrAbove(High)")
	}
	d = s.HandleAccess(execveEvent(src(taint.Binary, "/bin/e")))
	if d != Proceed {
		t.Error("Low warning terminated")
	}
}

func TestDisableInfoFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableInfoFlow = true
	s := New(cfg, nil)
	s.HandleIO(writeEvent("/x", taint.File,
		[]taint.Source{src(taint.Binary, "/bin/x")},
		src(taint.Binary, "/bin/x")))
	if len(s.Warnings()) != 0 {
		t.Error("info flow rules ran while disabled")
	}
}

func TestDisableFrequency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableFrequency = true
	s := New(cfg, nil)
	ev := execveEvent(src(taint.Binary, "/bin/evil"))
	ev.Freq = 1
	ev.Time = 50_000
	s.HandleAccess(ev)
	if ws := s.Warnings(); len(ws) != 1 || ws[0].Severity != Low {
		t.Fatalf("warnings = %v (frequency should be ignored)", ws)
	}
}

func TestTraceRecordsFires(t *testing.T) {
	s := newSecpert()
	s.HandleAccess(execveEvent(src(taint.Binary, "/bin/evil")))
	tr := s.Trace()
	if len(tr) != 1 || tr[0].Rule != "check_execve" {
		t.Errorf("trace = %v", tr)
	}
	if !strings.HasPrefix(tr[0].String(), "FIRE 1 check_execve: f-") {
		t.Errorf("trace string = %q", tr[0])
	}
}

func TestMaxSeverity(t *testing.T) {
	s := newSecpert()
	if _, any := s.MaxSeverity(); any {
		t.Error("empty secpert reports warnings")
	}
	s.HandleAccess(execveEvent(src(taint.Binary, "/bin/e")))
	s.HandleAccess(execveEvent(src(taint.Socket, "evil:1")))
	sev, any := s.MaxSeverity()
	if !any || sev != High {
		t.Errorf("max = %v, %v", sev, any)
	}
	if len(s.WarningsAt(Low)) != 1 || len(s.WarningsAt(High)) != 1 {
		t.Error("WarningsAt wrong")
	}
}

func TestSeverityAndCategoryStrings(t *testing.T) {
	if Low.String() != "LOW" || Medium.String() != "MEDIUM" || High.String() != "HIGH" {
		t.Error("severity strings")
	}
	if ExecutionFlow.String() != "execution-flow" ||
		ResourceAbuse.String() != "resource-abuse" ||
		InformationFlow.String() != "information-flow" {
		t.Error("category strings")
	}
	w := Warning{Severity: High, Message: "x"}
	if w.String() != "Warning [HIGH] x" {
		t.Errorf("warning string = %q", w.String())
	}
}
