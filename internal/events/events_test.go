package events

import (
	"strings"
	"testing"

	"repro/internal/taint"
)

func TestRefString(t *testing.T) {
	r := Ref{
		Name: "/bin/ls",
		Type: taint.File,
		Origin: []taint.Source{
			{Type: taint.Binary, Name: "/bin/evil"},
		},
	}
	s := r.String()
	for _, want := range []string{"FILE", `"/bin/ls"`, "BINARY", "/bin/evil"} {
		if !strings.Contains(s, want) {
			t.Errorf("Ref.String() = %q missing %q", s, want)
		}
	}
}

func TestDirString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("Dir strings wrong")
	}
}
