// Package events defines the event vocabulary Harrier sends Secpert
// (paper §6.1.2). There are two event types: resource access (a
// system call naming a resource — execve, open, creat, clone, and the
// socket calls) and resource I/O (data moving into or out of the
// program — read, write, send, recv). Every event carries the
// execution context the policy needs: virtual time, the frequency of
// the (application) basic block that triggered it, and its code
// address.
package events

import (
	"fmt"

	"repro/internal/taint"
)

// Ref identifies a resource together with the provenance of its
// *name*: the "resource ID data source" of paper §5.1/Table 2.
// For example, opening "/etc/passwd" with a hardcoded path yields
// Ref{Name: "/etc/passwd", Type: File, Origin: [BINARY:"/bin/evil"]}.
type Ref struct {
	Name   string
	Type   taint.SourceType
	Origin []taint.Source
}

// String renders the reference for diagnostics.
func (r Ref) String() string {
	return fmt.Sprintf("%s %q (name from %v)", r.Type, r.Name, r.Origin)
}

// Access is a resource-access event (paper §6.1.2 type 1): the call
// number/name, the resource name and type, the resource ID data
// source, plus time, code frequency and code address.
type Access struct {
	Call     string // "SYS_execve", "SYS_open", "SYS_socketcall:connect", ...
	PID      int
	Resource Ref
	Time     uint64
	Freq     int64  // executions of the triggering application BB
	Addr     string // hex address of the triggering application BB

	// Process-creation pressure, populated on clone/fork events for
	// the resource-abuse rules (§4.2): total processes created by the
	// monitored tree, and how many were created within the recent
	// rate window.
	CloneCount int64
	CloneRate  int64

	// MemBytes is the total heap (brk) growth of the monitored tree,
	// populated on SYS_brk events for the memory-abuse extension
	// (paper §10 future work item 4).
	MemBytes int64
}

// Dir is the direction of an I/O event.
type Dir int

// Directions.
const (
	Read Dir = iota
	Write
)

// String names the direction.
func (d Dir) String() string {
	if d == Read {
		return "read"
	}
	return "write"
}

// IO is a read-from / write-to resource event (paper §6.1.2 type 2):
// the data's sources, the endpoint resource and its name provenance,
// and the execution context.
type IO struct {
	Call string
	PID  int
	Dir  Dir

	// Data is the set of sources the moved bytes carry (the union of
	// the buffer's byte tags).
	Data []taint.Source

	// Head is a prefix of the moved bytes (up to 16), used by the
	// content-analysis extension (paper §10 future work item 5) to
	// recognize executable payloads being dropped.
	Head []byte

	// Resource is the endpoint: the target for writes, the source for
	// reads.
	Resource Ref

	// Server context: the endpoint is a connection accepted on a
	// listener this program bound ("it is a server with the address
	// ...", paper §8.3.6). ServerOrigin is the provenance of the
	// *listening* address's name.
	Server       bool
	ServerAddr   string
	ServerOrigin []taint.Source

	Time uint64
	Freq int64
	Addr string
}
