package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "Demo",
		Header: []string{"Name", "Value"},
	}
	tbl.Add("short", "1")
	tbl.Add("a-much-longer-name", "22")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if lines[1] != "====" {
		t.Errorf("underline = %q", lines[1])
	}
	// Columns aligned: every row's "Value" column starts at the same
	// offset.
	idx := strings.Index(lines[2], "Value")
	for _, l := range lines[4:] {
		if len(l) < idx {
			t.Fatalf("short row %q", l)
		}
	}
	if !strings.Contains(out, "a-much-longer-name  22") {
		t.Errorf("row alignment broken:\n%s", out)
	}
	if !strings.Contains(lines[3], "----") {
		t.Errorf("separator missing: %q", lines[3])
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := &Table{Header: []string{"A"}}
	tbl.Add("x")
	out := tbl.String()
	if strings.HasPrefix(out, "\n") || strings.Contains(out, "==") {
		t.Errorf("untitled table rendered a title block:\n%s", out)
	}
}

func TestTitlesCoverTableIDs(t *testing.T) {
	for _, id := range TableIDs {
		if Titles[id] == "" {
			t.Errorf("no title for %s", id)
		}
	}
}
