// Package report renders the reproduction's results in the shape of
// the paper's tables: one row per benchmark with HTH's outcome and
// whether the paper-reported expectation was met.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
		fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Titles of the paper's tables, keyed by the corpus table ids.
var Titles = map[string]string{
	"T1": "Table 1: Execution patterns exhibited by malicious code",
	"T4": "Table 4: HTH Micro benchmarks - Execution Flow",
	"T5": "Table 5: HTH Micro benchmarks - Resource Abuse",
	"T6": "Table 6: HTH Micro benchmarks - Information Flow",
	"T7": "Table 7: HTH Success in not warning when running well behaved programs",
	"T8": "Table 8: HTH Success detecting Real exploits",
	"M1": "Section 8.4.1: pwsafe macro benchmark",
	"M2": "Section 8.4.2: mw2.2.1 macro benchmark",
	"M3": "Section 8.4.3: Tic Tac Toe macro benchmark",
}

// TableIDs lists the renderable tables in paper order.
var TableIDs = []string{"T1", "T4", "T5", "T6", "T7", "T8", "M1", "M2", "M3"}
