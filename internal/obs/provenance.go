package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Provenance records where tainted data came from and which code
// carried it: one bounded edge list per taint source, grown at the
// source's entry point (a read/recv tagging a buffer, an image map, a
// CPUID), at every basic-block entry that observes the source live in
// a register (both the interpreter and the summary tier attribute at
// block granularity), at translation short-circuits (gethostbyname),
// and at exit points (write/send/execve). The per-source chain renders
// as the causal path a warning cites:
//
//	FILE:"/.pwsafe.dat" → read fd 3 @t=144 → bb 0x401034 (×7) → send fd 4 @t=310
//
// The recorder is keyed by source *labels* (taint.Source.String()
// form) so this package stays independent of the taint substrate.
// Recording never mutates taint state: a run with provenance enabled
// produces bit-identical detections and tag sets to one without.
//
// A Provenance is safe for concurrent use; the simulator records from
// its single thread while readers (Result consumers, exporters)
// snapshot chains.
type Provenance struct {
	mu        sync.Mutex
	maxHops   int
	ids       map[string]ProvID
	traces    []*SourceTrace
	symbolize func(addr uint32) (string, bool)
}

// ProvID is the stable identifier a taint source receives when it
// first enters the recorder; IDs are assigned densely in intern order,
// which is deterministic for a deterministic guest.
type ProvID uint32

// HopKind classifies one edge of a provenance chain.
type HopKind uint8

// Hop kinds, in causal order.
const (
	// HopEntry is data entering the monitored world: a read/recv
	// tagging memory, an image map, hardware output, process input.
	HopEntry HopKind = iota
	// HopBlock is the source observed live in a register at a
	// basic-block entry; consecutive entries of the same block merge
	// into one hop with a count (the "×312" notation).
	HopBlock
	// HopXfer is a translation short-circuit carrying the tag across
	// a native routine (paper §7.2: gethostbyname).
	HopXfer
	// HopExit is data crossing an exit point: write/send/execve.
	HopExit
)

var hopKindNames = [...]string{
	HopEntry: "entry",
	HopBlock: "block",
	HopXfer:  "xfer",
	HopExit:  "exit",
}

// String names the hop kind.
func (k HopKind) String() string {
	if int(k) < len(hopKindNames) {
		return hopKindNames[k]
	}
	return "hop?"
}

// Hop is one recorded propagation edge.
type Hop struct {
	Kind HopKind
	// Time is the virtual clock at the first occurrence.
	Time uint64
	// PID is the guest process the hop was observed in.
	PID int32
	// Addr is the block leader address (HopBlock only).
	Addr uint32
	// Detail is the rendered operand: "read fd 3", "gethostbyname",
	// "write fd 1", or the owning image for block hops.
	Detail string
	// Tier marks a block hop served by the summary tier.
	Tier bool
	// Count is how many consecutive identical occurrences this hop
	// absorbed (≥ 1).
	Count uint64
}

// SourceTrace is the recorded history of one taint source.
type SourceTrace struct {
	ID    ProvID
	Label string
	Hops  []Hop
	// Dropped counts block/xfer hops not recorded because the
	// per-source bound was reached. Entry and exit hops are never
	// dropped: a chain always keeps its end points.
	Dropped uint64
}

// DefaultMaxHops is the per-source edge-list bound applied when
// NewProvenance is given a non-positive limit.
const DefaultMaxHops = 32

// NewProvenance builds a recorder bounding each source's edge list to
// maxHops interior (block/xfer) hops; maxHops <= 0 applies
// DefaultMaxHops.
func NewProvenance(maxHops int) *Provenance {
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	return &Provenance{maxHops: maxHops, ids: make(map[string]ProvID)}
}

// Intern returns the stable ID for a source label, assigning one on
// first sight.
func (p *Provenance) Intern(label string) ProvID {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, ok := p.ids[label]; ok {
		return id
	}
	id := ProvID(len(p.traces))
	p.ids[label] = id
	p.traces = append(p.traces, &SourceTrace{ID: id, Label: label})
	return id
}

// Len reports how many sources have been interned.
func (p *Provenance) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.traces)
}

// record merges h into the trace's last hop when it repeats it, else
// appends it. Interior hops respect the bound; entry/exit hops always
// land (chains keep their end points).
func (p *Provenance) record(id ProvID, h Hop) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.traces) {
		return
	}
	tr := p.traces[id]
	if n := len(tr.Hops); n > 0 {
		last := &tr.Hops[n-1]
		if last.Kind == h.Kind && last.Addr == h.Addr &&
			last.Detail == h.Detail && last.Tier == h.Tier {
			last.Count++
			return
		}
	}
	interior := h.Kind == HopBlock || h.Kind == HopXfer
	if interior && p.interiorLen(tr) >= p.maxHops {
		tr.Dropped++
		return
	}
	h.Count = 1
	tr.Hops = append(tr.Hops, h)
}

func (p *Provenance) interiorLen(tr *SourceTrace) int {
	n := 0
	for i := range tr.Hops {
		if k := tr.Hops[i].Kind; k == HopBlock || k == HopXfer {
			n++
		}
	}
	return n
}

// Entry records a data-entry hop.
func (p *Provenance) Entry(id ProvID, t uint64, pid int32, detail string) {
	p.record(id, Hop{Kind: HopEntry, Time: t, PID: pid, Detail: detail})
}

// EnsureEntry records an entry hop only when the trace is still empty:
// the lazy, synthesized entry for sources that are first observed in
// flight (image maps, process input) rather than at an explicit tag
// site.
func (p *Provenance) EnsureEntry(id ProvID, t uint64, pid int32, detail string) {
	p.mu.Lock()
	empty := int(id) < len(p.traces) && len(p.traces[id].Hops) == 0
	p.mu.Unlock()
	if empty {
		p.Entry(id, t, pid, detail)
	}
}

// Block records the source live in a register at a basic-block entry.
// image is kept on the hop (for exporters); tier marks the summary
// tier.
func (p *Provenance) Block(id ProvID, t uint64, pid int32, addr uint32, image string, tier bool) {
	p.record(id, Hop{Kind: HopBlock, Time: t, PID: pid, Addr: addr, Detail: image, Tier: tier})
}

// Xfer records a translation hop.
func (p *Provenance) Xfer(id ProvID, t uint64, pid int32, detail string) {
	p.record(id, Hop{Kind: HopXfer, Time: t, PID: pid, Detail: detail})
}

// Exit records an exit-point hop.
func (p *Provenance) Exit(id ProvID, t uint64, pid int32, detail string) {
	p.record(id, Hop{Kind: HopExit, Time: t, PID: pid, Detail: detail})
}

// SetSymbolizer installs a code-address resolver consulted when
// rendering block hops: it returns the "image:symbol+0xdelta" frame
// for a block leader address, or reports false to keep the raw
// address. A symbolizer changes only how chains render, never what is
// recorded; with none installed (the default) the output is
// byte-identical to earlier releases.
func (p *Provenance) SetSymbolizer(fn func(addr uint32) (string, bool)) {
	p.mu.Lock()
	p.symbolize = fn
	p.mu.Unlock()
}

// renderHop formats one hop as a chain segment; callers hold p.mu.
func (p *Provenance) renderHop(h *Hop) string {
	var b strings.Builder
	if h.Kind == HopBlock {
		if p.symbolize != nil {
			if frame, ok := p.symbolize(h.Addr); ok {
				fmt.Fprintf(&b, "bb %s", frame)
			} else {
				fmt.Fprintf(&b, "bb 0x%x", h.Addr)
			}
		} else {
			fmt.Fprintf(&b, "bb 0x%x", h.Addr)
		}
		switch {
		case h.Tier && h.Count > 1:
			fmt.Fprintf(&b, " (tier ×%d)", h.Count)
		case h.Tier:
			b.WriteString(" (tier)")
		case h.Count > 1:
			fmt.Fprintf(&b, " (×%d)", h.Count)
		}
		return b.String()
	}
	b.WriteString(h.Detail)
	fmt.Fprintf(&b, " @t=%d", h.Time)
	if h.Count > 1 {
		fmt.Fprintf(&b, " (×%d)", h.Count)
	}
	return b.String()
}

// chainLocked renders one trace; callers hold p.mu.
func (p *Provenance) chainLocked(tr *SourceTrace) string {
	var b strings.Builder
	b.WriteString(tr.Label)
	for i := range tr.Hops {
		b.WriteString(" → ")
		b.WriteString(p.renderHop(&tr.Hops[i]))
	}
	if tr.Dropped > 0 {
		fmt.Fprintf(&b, " [+%d hops elided]", tr.Dropped)
	}
	return b.String()
}

// Chain renders the causal chain of one source.
func (p *Provenance) Chain(id ProvID) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.traces) {
		return ""
	}
	return p.chainLocked(p.traces[id])
}

// ChainOf renders the chain for a source label, reporting whether the
// source was ever recorded.
func (p *Provenance) ChainOf(label string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, ok := p.ids[label]
	if !ok {
		return "", false
	}
	return p.chainLocked(p.traces[id]), true
}

// Traces returns an independent copy of every source trace, in ID
// (intern) order.
func (p *Provenance) Traces() []SourceTrace {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SourceTrace, len(p.traces))
	for i, tr := range p.traces {
		cp := *tr
		cp.Hops = append([]Hop(nil), tr.Hops...)
		out[i] = cp
	}
	return out
}

// Chains renders every recorded source's chain, in ID order.
func (p *Provenance) Chains() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.traces))
	for i, tr := range p.traces {
		out[i] = p.chainLocked(tr)
	}
	return out
}

// chromeEvent is one trace_event record of the Chrome tracing format
// (the JSON Perfetto and chrome://tracing ingest).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace emits the recorded chains in Chrome trace_event
// JSON: one track (tid) per source, named by its label, with every hop
// an instant event at its virtual timestamp. Load the output in
// Perfetto or chrome://tracing. The output is deterministic for a
// deterministic guest (IDs are intern-ordered, hops are recorded
// in causal order, and no wall-clock value is emitted).
func (p *Provenance) WriteChromeTrace(w io.Writer) error {
	traces := p.Traces()
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{DisplayTimeUnit: "ns"}
	for _, tr := range traces {
		tid := uint64(tr.ID)
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": tr.Label},
		})
		for i := range tr.Hops {
			h := &tr.Hops[i]
			args := map[string]any{"kind": h.Kind.String()}
			if h.Count > 1 {
				args["count"] = h.Count
			}
			if h.Tier {
				args["tier"] = true
			}
			if h.PID != 0 {
				args["guest_pid"] = h.PID
			}
			name := h.Detail
			if h.Kind == HopBlock {
				name = fmt.Sprintf("bb 0x%x", h.Addr)
				if h.Detail != "" {
					args["image"] = h.Detail
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: name, Phase: "i", TS: h.Time, PID: 1, TID: tid,
				Scope: "t", Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
