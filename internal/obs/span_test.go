package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSpanRecorderLifecycle covers the single-goroutine contract:
// parentage, explicit-time spans, idempotent close, NamedDuration.
func TestSpanRecorderLifecycle(t *testing.T) {
	r := NewSpanRecorder("j000042")
	if r.TraceID() != "j000042" {
		t.Fatalf("trace id %q", r.TraceID())
	}
	root := r.StartSpanAt(0, "job", r.Now()-1e6, 0)
	q := r.StartSpan(root, "queue", 0)
	if r.OpenCount() != 2 {
		t.Fatalf("open %d, want 2", r.OpenCount())
	}
	r.EndSpan(q, "ok")
	r.EndSpan(q, "late")  // idempotent: first close wins
	r.EndSpan(0, "noop")  // id 0 tolerated
	r.EndSpan(99999, "x") // unknown id tolerated
	r.AddSpan(root, "exec", r.Now()-5e5, r.Now(), "done")
	r.EndSpan(root, "done")
	if r.OpenCount() != 0 {
		t.Fatalf("open %d after closing all, want 0", r.OpenCount())
	}
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if got := r.Root(); got == nil || got.Name != "job" || got.Status != "done" {
		t.Fatalf("root = %+v", got)
	}
	for _, sp := range spans {
		if sp.End == 0 || sp.End < sp.Start {
			t.Errorf("span %s: bad interval [%d, %d]", sp.Name, sp.Start, sp.End)
		}
	}
	if q := spans[1]; q.Status != "ok" {
		t.Errorf("queue span status %q, want first close to win", q.Status)
	}
	if d, n := r.NamedDuration("exec"); n != 1 || d <= 0 {
		t.Errorf("NamedDuration(exec) = (%d, %d)", d, n)
	}

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("chrome trace has %d events, want 3", len(doc.TraceEvents))
	}
}

// TestSpanRecorderPublishMirror checks every span mutation is mirrored
// as balanced span.start/span.end events carrying the trace ID and
// wall-clock (non-virtual) timestamps.
func TestSpanRecorderPublishMirror(t *testing.T) {
	r := NewSpanRecorder("trace-x")
	var events []Event
	r.SetPublish(func(e Event) { events = append(events, e) })
	root := r.StartSpan(0, "job", 0)
	r.AddSpan(root, "exec", r.Now()-1000, r.Now(), "done")
	r.EndSpan(root, "done")
	starts, ends := 0, 0
	for _, e := range events {
		switch e.Kind {
		case KindSpanStart:
			starts++
			if e.Str2 != "trace-x" {
				t.Errorf("start event trace %q", e.Str2)
			}
		case KindSpanEnd:
			ends++
		}
		if e.Time == 0 {
			t.Error("span event with zero time would be restamped by the bus clock")
		}
	}
	if starts != 2 || ends != 2 {
		t.Fatalf("starts=%d ends=%d, want 2/2", starts, ends)
	}
}

// TestSpanRecorderStress hammers one recorder from many goroutines —
// the service touches a job's recorder from the submitter, the shard
// worker, the retry timer, and Drain. Run with -race this is the span
// plane's concurrency gate.
func TestSpanRecorderStress(t *testing.T) {
	r := NewSpanRecorder("stress")
	var published atomic.Int64
	r.SetPublish(func(Event) { published.Add(1) })
	root := r.StartSpan(0, "job", 0)
	var wg sync.WaitGroup
	const workers = 8
	ids := make(chan uint64, workers*64)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				id := r.StartSpan(root, "work", uint64(i))
				ids <- id
				r.AddSpan(root, "blip", r.Now(), r.Now(), "ok")
			}
		}()
	}
	// Closers race each other AND the openers, double-closing on purpose.
	var cwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for id := range ids {
				r.EndSpan(id, "ok")
				r.EndSpan(id, "dup")
			}
		}()
	}
	wg.Wait()
	close(ids)
	cwg.Wait()
	r.EndSpan(root, "done")
	if got := r.OpenCount(); got != 0 {
		t.Fatalf("open %d after close storm, want 0", got)
	}
	// Every span is one start + one end: workers*64 "work" spans,
	// workers*64 "blip" spans, plus the root.
	if got, wantEv := int(published.Load()), (workers*64*2+1)*2; got != wantEv {
		t.Fatalf("published %d span events, want %d", got, wantEv)
	}
}

// TestTierTimer checks transition-sampled attribution: all elapsed
// time lands in exactly the touched tiers and Flush closes the tail.
func TestTierTimer(t *testing.T) {
	tt := NewTierTimer()
	tt.Touch(TierInterp)
	time.Sleep(2 * time.Millisecond)
	tt.Touch(TierSummary)
	tt.Touch(TierSummary) // same-tier: no transition
	time.Sleep(2 * time.Millisecond)
	tt.Touch(TierTrace)
	ns := tt.Flush()
	if ns[TierInterp] <= 0 || ns[TierSummary] <= 0 {
		t.Fatalf("touched tiers uncredited: %v", ns)
	}
	if ns[TierClean] != 0 {
		t.Fatalf("untouched tier credited: %v", ns)
	}
	var total int64
	for _, v := range ns {
		total += v
	}
	if total < 4*int64(time.Millisecond) {
		t.Fatalf("total %dns under slept time", total)
	}
}

// TestLatencyHist pins the bucket shape: log2-µs bounds, conservative
// quantiles, mergeability.
func TestLatencyHist(t *testing.T) {
	var h LatencyHist
	h.Observe(500)       // sub-µs → first bucket (≤1µs)
	h.Observe(1_500_000) // 1.5ms
	h.Observe(1_500_000)
	h.Observe(200_000_000_000) // 200s → overflow bucket
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
	if q := h.Quantile(0.5); q != latBound(11) { // 1.5ms → (1ms,2ms] bucket
		t.Fatalf("p50 = %d, want %d", q, latBound(11))
	}
	if q := h.Quantile(1.0); q != latBound(latBuckets-1) {
		t.Fatalf("p100 = %d, want overflow bound", q)
	}
	var h2 LatencyHist
	h2.Observe(500)
	h2.Merge(&h)
	if h2.Count() != 5 || h2.Sum() != h.Sum()+500 {
		t.Fatalf("merge: count %d sum %d", h2.Count(), h2.Sum())
	}
	bs := h.Buckets()
	for i := 1; i < len(bs); i++ {
		if bs[i].Value <= bs[i-1].Value {
			t.Fatalf("buckets unordered: %v", bs)
		}
	}
	cum := h.cumulative()
	if cum[latBuckets-1] != h.Count() {
		t.Fatalf("cumulative tail %d != count %d", cum[latBuckets-1], h.Count())
	}
}

// TestTenantCardinalityCap: beyond the cap, new tenants fold into
// "other" across both the job counters and the latency series, and the
// folds are themselves counted.
func TestTenantCardinalityCap(t *testing.T) {
	m := NewMetrics()
	m.SetTenantCap(2)
	for _, tenant := range []string{"a", "b", "c", "d", "c"} {
		m.Event(Event{Kind: KindJobDone, Str: tenant})
		m.Event(Event{Kind: KindJobLatency, Str: tenant, Str2: "e2e", Num: 1_000_000})
	}
	if got := m.NamedCount(KindJobDone, "a"); got != 1 {
		t.Errorf("tenant a count %d", got)
	}
	if got := m.NamedCount(KindJobDone, "other"); got != 3 {
		t.Errorf("other bucket count %d, want 3 (c, d, c)", got)
	}
	if got := m.NamedCount(KindJobDone, "c"); got != 0 {
		t.Errorf("capped tenant c leaked its own series: %d", got)
	}
	if got := m.TenantDropped(); got != 6 {
		t.Errorf("dropped %d label observations, want 6 (3 jobs + 3 latency)", got)
	}
	s := m.Snapshot()
	if s.Counters["tenant_labels_dropped"] != 6 {
		t.Errorf("snapshot dropped counter = %d", s.Counters["tenant_labels_dropped"])
	}
	tenants := map[string]bool{}
	for _, ls := range s.Latency {
		tenants[ls.Tenant] = true
	}
	if !tenants["other"] || tenants["c"] || tenants["d"] {
		t.Errorf("latency series tenants = %v, want a/b/other only", tenants)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("hth_tenant_labels_dropped_total 6")) {
		t.Errorf("exposition missing dropped-labels family:\n%s", buf.Bytes())
	}
}

// latencySnapshot builds a deterministic snapshot with two tenants and
// three stages plus the deadline-burn ratio series.
func latencySnapshot() *Snapshot {
	m := NewMetrics()
	obs := func(tenant, stage string, v uint64) {
		m.Event(Event{Kind: KindJobLatency, Str: tenant, Str2: stage, Num: v})
	}
	obs("acme", "queue", 800_000)   // 0.8ms
	obs("acme", "queue", 3_000_000) // 3ms
	obs("acme", "exec", 40_000_000) // 40ms
	obs("acme", "e2e", 45_000_000)
	obs("acme", "deadline_burn", 120_000) // 12% of deadline ×1e6
	obs("beta", "queue", 900_000)
	obs("beta", "exec", 6_000_000_000) // 6s
	obs("beta", "e2e", 6_100_000_000)
	obs("beta", "deadline_burn", 2_100_000) // 210%: blew its deadline
	return m.Snapshot()
}

// TestPrometheusLatencyGolden pins the histogram exposition: cumulative
// le buckets in seconds (ratio for deadline_burn), _sum/_count per
// tenant, families in snapshot (stage, tenant) order.
func TestPrometheusLatencyGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, latencySnapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus_latency.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("latency exposition diverged:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestLatencyRollup checks the /healthz aggregation path: cross-tenant
// merge, millisecond conversion, empty-stage miss.
func TestLatencyRollup(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 90; i++ {
		m.Event(Event{Kind: KindJobLatency, Str: "a", Str2: "exec", Num: 1_000_000}) // 1ms
	}
	for i := 0; i < 10; i++ {
		m.Event(Event{Kind: KindJobLatency, Str: "b", Str2: "exec", Num: 1_000_000_000}) // 1s tail
	}
	r, ok := m.LatencyRollup("exec")
	if !ok || r.Count != 100 {
		t.Fatalf("rollup = %+v ok=%v", r, ok)
	}
	if r.P50MS > 2 { // 1ms observations land in the ≤1.024ms bucket
		t.Errorf("p50 %.3fms, want ~1ms", r.P50MS)
	}
	if r.P99MS < 500 {
		t.Errorf("p99 %.3fms should catch the 1s tail", r.P99MS)
	}
	if _, ok := m.LatencyRollup("nope"); ok {
		t.Error("rollup of empty stage reported ok")
	}
	if v, ok := m.LatencyQuantile("exec", 0.5); !ok || v == 0 {
		t.Errorf("LatencyQuantile = %d, %v", v, ok)
	}
}

// TestSSEWedgedSubscriber wedges a subscriber (never drains its
// channel) and checks the publisher never blocks, the overflow is
// dropped deterministically (buffer fills, the rest fall), and the
// drops surface as the hth_sse_dropped_total registry counter.
func TestSSEWedgedSubscriber(t *testing.T) {
	in := NewIntrospection(nil)
	wedgedID, ch := in.subscribe() // never read from
	defer in.unsubscribe(wedgedID)

	const n = 2000 // > the 1024 channel buffer, forces drops
	for i := 0; i < n; i++ {
		in.Event(Event{Kind: KindSyscallEnter, Str: "SYS_read", Num: uint64(i)})
	}
	want := uint64(n - cap(ch))
	if d := in.Dropped(); d != want {
		t.Fatalf("dropped %d events, want %d (buffer %d of %d)", d, want, cap(ch), n)
	}
	if c := in.Metrics().Counter("sse_slow_dropped"); c != want {
		t.Fatalf("registry counter %d != drops %d", c, want)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, in.Metrics().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("hth_sse_dropped_total")) {
		t.Error("exposition missing hth_sse_dropped_total")
	}
}
