package obs

import (
	"fmt"
	"strconv"
)

// Filter selects events by layer, kind, pid, and rule — the one
// selection vocabulary shared by `hth-trace -replay` flags and the
// introspection server's /events query parameters. The zero Filter
// matches everything.
type Filter struct {
	Layer    Layer
	HasLayer bool
	Kind     Kind
	HasKind  bool
	PID      int32
	HasPID   bool
	// Rule restricts to rule.fire/warning events of the named rule;
	// events of other kinds never match a rule filter.
	Rule string
}

// ParseFilter builds a Filter from the textual selector form: layer
// and kind by trace name ("vos", "syscall.enter"), pid as a decimal
// ("" or a negative value means any), rule as an exact rule name.
func ParseFilter(layer, kind, pid, rule string) (Filter, error) {
	var f Filter
	if layer != "" {
		l, ok := LayerByName(layer)
		if !ok {
			return f, fmt.Errorf("obs: unknown layer %q", layer)
		}
		f.Layer, f.HasLayer = l, true
	}
	if kind != "" {
		k, ok := KindByName(kind)
		if !ok {
			return f, fmt.Errorf("obs: unknown kind %q", kind)
		}
		f.Kind, f.HasKind = k, true
	}
	if pid != "" {
		n, err := strconv.Atoi(pid)
		if err != nil {
			return f, fmt.Errorf("obs: bad pid %q", pid)
		}
		if n >= 0 {
			f.PID, f.HasPID = int32(n), true
		}
	}
	f.Rule = rule
	return f, nil
}

// Match reports whether e passes the filter.
func (f *Filter) Match(e Event) bool {
	if f.HasLayer && e.Layer != f.Layer {
		return false
	}
	if f.HasKind && e.Kind != f.Kind {
		return false
	}
	if f.HasPID && e.PID != f.PID {
		return false
	}
	if f.Rule != "" {
		switch e.Kind {
		case KindRuleFire, KindWarning:
			if e.Str != f.Rule {
				return false
			}
		default:
			return false
		}
	}
	return true
}
