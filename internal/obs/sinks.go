package obs

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
)

// wireEvent is the JSONL wire form of an Event: layer and kind are
// symbolic so traces stay readable and stable across enum renumbering.
type wireEvent struct {
	Seq   uint64 `json:"seq"`
	Time  uint64 `json:"t"`
	Layer string `json:"layer"`
	Kind  string `json:"kind"`
	PID   int32  `json:"pid,omitempty"`
	Num   uint64 `json:"num,omitempty"`
	Num2  uint64 `json:"num2,omitempty"`
	Str   string `json:"str,omitempty"`
	Str2  string `json:"str2,omitempty"`
}

// jsonlSink streams one JSON object per event, remembering the first
// writer error so Close can surface it.
type jsonlSink struct {
	w   io.Writer // underlying writer, kept for ResetErr re-arming
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// JSONL builds a sink that writes the trace as JSON Lines: one object
// per event with symbolic layer/kind names, buffered, flushed on
// Close. The output replays with `hth-trace -replay`. The first
// underlying write error sticks: later events are dropped and Close
// returns it (surfaced through Result.ObserverErr), so a full disk or
// closed pipe is never silently an empty trace.
func JSONL(w io.Writer) Sink {
	bw := bufio.NewWriter(w)
	return &jsonlSink{w: w, bw: bw, enc: json.NewEncoder(bw)}
}

func (s *jsonlSink) Event(e Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(wireEvent{ // Encode appends '\n'
		Seq: e.Seq, Time: e.Time,
		Layer: e.Layer.String(), Kind: e.Kind.String(),
		PID: e.PID, Num: e.Num, Num2: e.Num2, Str: e.Str, Str2: e.Str2,
	})
}

func (s *jsonlSink) Close() error {
	if err := s.bw.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}

// ResetErr clears the sink's sticky error so a long-lived sink shared
// across pooled runs reports each run's health independently (see
// ResetErrs). The bufio layer latches write errors of its own, so it
// is re-armed too; any bytes it was still holding from the failed run
// are dropped (they never made it out anyway).
func (s *jsonlSink) ResetErr() {
	s.err = nil
	s.bw.Reset(s.w)
}

// writeWireEvent writes one event in the JSONL wire form (shared by
// the Flight dump paths).
func writeWireEvent(w io.Writer, e Event) error {
	b, err := json.Marshal(wireEvent{
		Seq: e.Seq, Time: e.Time,
		Layer: e.Layer.String(), Kind: e.Kind.String(),
		PID: e.PID, Num: e.Num, Num2: e.Num2, Str: e.Str, Str2: e.Str2,
	})
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// DecodeJSONL parses one JSONL trace line back into an Event.
func DecodeJSONL(line []byte) (Event, error) {
	var w wireEvent
	if err := json.Unmarshal(line, &w); err != nil {
		return Event{}, err
	}
	l, ok := LayerByName(w.Layer)
	if !ok {
		return Event{}, fmt.Errorf("obs: unknown layer %q", w.Layer)
	}
	k, ok := KindByName(w.Kind)
	if !ok {
		return Event{}, fmt.Errorf("obs: unknown kind %q", w.Kind)
	}
	return Event{
		Seq: w.Seq, Time: w.Time, Layer: l, Kind: k,
		PID: w.PID, Num: w.Num, Num2: w.Num2, Str: w.Str, Str2: w.Str2,
	}, nil
}

// MaybeGzip wraps r in a gzip reader when the stream starts with the
// gzip magic bytes, so trace consumers read .jsonl and .jsonl.gz
// files transparently (flight dumps are gzip by default).
func MaybeGzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		return gzip.NewReader(br)
	}
	if err != nil && err != io.EOF {
		return nil, err
	}
	return br, nil
}

// ReadJSONL decodes a whole trace stream, calling fn per event.
func ReadJSONL(r io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		e, err := DecodeJSONL(line)
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return sc.Err()
}

// samplingSink forwards one event in n to the wrapped sink.
type samplingSink struct {
	n    uint64
	seen uint64
	sink Sink
}

// Sampling decimates the stream: every n-th event reaches sink
// (n <= 1 forwards everything). Counter-style sinks downstream see a
// 1/n sample; multiply accordingly.
func Sampling(n int, sink Sink) Sink {
	if n <= 1 {
		return sink
	}
	return &samplingSink{n: uint64(n), sink: sink}
}

func (s *samplingSink) Event(e Event) {
	s.seen++
	if s.seen%s.n == 0 {
		s.sink.Event(e)
	}
}

func (s *samplingSink) Close() error { return s.sink.Close() }

func (s *samplingSink) Unwrap() Sink { return s.sink }

// textSink re-emits the byte chunks of selected text-carrying kinds.
type textSink struct {
	w       io.Writer
	asserts bool
	err     error
}

// CLIPSText builds a sink that renders the expert engine's CLIPS-style
// printout (rule-fire trace and warning text) to w — byte-identical to
// what the deprecated Config.Verbose writer receives.
func CLIPSText(w io.Writer) Sink { return &textSink{w: w} }

// CLIPSTranscript is CLIPSText plus the Appendix-A.1 assert echo —
// byte-identical to Config.Verbose with Config.TraceAsserts set.
func CLIPSTranscript(w io.Writer) Sink { return &textSink{w: w, asserts: true} }

func (s *textSink) Event(e Event) {
	switch e.Kind {
	case KindSecText:
	case KindSecAssert:
		if !s.asserts {
			return
		}
	default:
		return
	}
	if s.err == nil {
		_, s.err = io.WriteString(s.w, e.Str)
	}
}

func (s *textSink) Close() error { return s.err }

// ResetErr clears the sink's sticky error (see ResetErrs).
func (s *textSink) ResetErr() { s.err = nil }

// ErrResetter is implemented by sinks that latch their first write
// error (surfaced through Bus.Close → Result.ObserverErr) and can be
// re-armed for a fresh run. Long-lived sinks shared across pooled
// runs must be reset at run setup, or one run's write failure leaks
// into every later Result on the same sink.
type ErrResetter interface {
	ResetErr()
}

// ResetErrs clears the sticky error of every ErrResetter reachable
// from the given sinks, unwrapping decorators. The run core calls
// this during setup so Result.ObserverErr reflects only the current
// run.
func ResetErrs(sinks []Sink) {
	for _, s := range sinks {
		for s != nil {
			if r, ok := s.(ErrResetter); ok {
				r.ResetErr()
			}
			u, ok := s.(Unwrapper)
			if !ok {
				break
			}
			s = u.Unwrap()
		}
	}
}

// TextWriter adapts a publish site that produces text through an
// io.Writer (the expert engine's Out/Echo taps) onto the bus: every
// Write becomes one event of the given kind carrying the exact bytes,
// stamped from the bus clock. The chunks round-trip byte-identically
// through CLIPSText/CLIPSTranscript because writes are forwarded
// unsplit and in order.
func TextWriter(bus *Bus, layer Layer, kind Kind) io.Writer {
	return &textWriter{bus: bus, layer: layer, kind: kind}
}

type textWriter struct {
	bus   *Bus
	layer Layer
	kind  Kind
}

func (t *textWriter) Write(p []byte) (int, error) {
	t.bus.Publish(Event{Layer: t.layer, Kind: t.kind, Str: string(p)})
	return len(p), nil
}

// SinkFunc adapts a function to the Sink interface (no-op Close).
type SinkFunc func(Event)

// Event calls f(e).
func (f SinkFunc) Event(e Event) { f(e) }

// Close is a no-op.
func (f SinkFunc) Close() error { return nil }

// Collector is a Sink that retains every event, for tests and replay
// tooling.
type Collector struct {
	Events []Event
}

// Event appends e.
func (c *Collector) Event(e Event) { c.Events = append(c.Events, e) }

// Close is a no-op.
func (c *Collector) Close() error { return nil }
