package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4), the wire form the introspection
// server serves on /metrics. The output is byte-stable for a given
// snapshot: families and label values are emitted in sorted order and
// no timestamp is attached, so a deterministic run exposes a
// deterministic page (modulo the wall-clock throughput gauge).
//
// The flat snapshot counters map onto labelled families:
//
//	events.<kind>    → hth_events_total{kind="<kind>"}
//	syscall.<name>   → hth_syscalls_total{name="<name>"}
//	rule.<name>      → hth_rule_fires_total{rule="<name>"}
//	warning.<name>   → hth_warnings_total{rule="<name>"}
//	chaos.<name>     → hth_chaos_faults_total{kind="<name>"}
//
// Gauges become hth_<name> with non-alphanumerics folded to '_', and
// discrete distributions ("taint.width") become one labelled series
// per bucket value.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	pw := &promWriter{w: w}

	type family struct {
		name, label, help string
	}
	families := []struct {
		prefix string
		family
	}{
		{"chaos.", family{"hth_chaos_faults_total", "kind", "Injected chaos faults by kind."}},
		{"events.", family{"hth_events_total", "kind", "Observed events by kind."}},
		{"job_aborted.", family{"hth_jobs_aborted_total", "tenant", "Service jobs aborted during drain by tenant."}},
		{"job_done.", family{"hth_jobs_done_total", "tenant", "Service jobs terminated by tenant."}},
		{"job_shed.", family{"hth_jobs_shed_total", "tenant", "Service jobs admitted with degraded features by tenant."}},
		{"job_submitted.", family{"hth_jobs_submitted_total", "tenant", "Service jobs admitted by tenant."}},
		{"rule.", family{"hth_rule_fires_total", "rule", "Expert-system rule firings by rule."}},
		{"syscall.", family{"hth_syscalls_total", "name", "Tracked guest system calls by name."}},
		{"warning.", family{"hth_warnings_total", "rule", "Policy warnings by rule."}},
	}
	grouped := make(map[string]map[string]uint64)
	var other, exact []string
	for k := range s.Counters {
		if _, ok := exactCounters[k]; ok {
			exact = append(exact, k)
			continue
		}
		matched := false
		for _, f := range families {
			if strings.HasPrefix(k, f.prefix) {
				if grouped[f.name] == nil {
					grouped[f.name] = make(map[string]uint64)
				}
				grouped[f.name][k[len(f.prefix):]] = s.Counters[k]
				matched = true
				break
			}
		}
		if !matched {
			other = append(other, k)
		}
	}
	sort.Strings(exact)
	for _, k := range exact {
		f := exactCounters[k]
		pw.header(f.name, "counter", f.help)
		pw.printf("%s %d\n", f.name, s.Counters[k])
	}
	for _, f := range families {
		vals := grouped[f.name]
		if len(vals) == 0 {
			continue
		}
		pw.header(f.name, "counter", f.help)
		for _, lv := range sortedKeys(vals) {
			pw.printf("%s{%s=%q} %d\n", f.name, f.label, lv, vals[lv])
		}
	}
	if len(other) > 0 {
		sort.Strings(other)
		pw.header("hth_counter_total", "counter", "Uncategorized counters by name.")
		for _, k := range other {
			pw.printf("hth_counter_total{name=%q} %d\n", k, s.Counters[k])
		}
	}

	gnames := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		mn := "hth_" + sanitizeMetricName(name)
		pw.header(mn, "gauge", "")
		pw.printf("%s %s\n", mn, strconv.FormatFloat(s.Gauges[name], 'g', -1, 64))
	}

	hnames := make([]string, 0, len(s.Hists))
	for name := range s.Hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		mn := "hth_" + sanitizeMetricName(name)
		pw.header(mn, "gauge", "Discrete distribution: count per value.")
		for _, b := range s.Hists[name] {
			pw.printf("%s{value=\"%d\"} %d\n", mn, b.Value, b.Count)
		}
	}

	writeLatencyFamilies(pw, s.Latency)
	return pw.err
}

// exactCounters maps free-form registry counter names to dedicated
// Prometheus families (everything else lands in hth_counter_total).
var exactCounters = map[string]struct{ name, help string }{
	"tenant_labels_dropped": {"hth_tenant_labels_dropped_total",
		"Tenant label observations folded into the \"other\" bucket by the cardinality cap."},
	"sse_slow_dropped": {"hth_sse_dropped_total",
		"Events dropped to slow /events SSE subscribers."},
}

// latencyFamilies maps a latency stage to its Prometheus histogram
// family and the divisor converting raw units to the family's unit.
var latencyFamilies = map[string]struct {
	name, help string
	div        float64
}{
	"queue":         {"hth_job_queue_wait_seconds", "Job queue wait by tenant.", 1e9},
	"exec":          {"hth_job_exec_seconds", "Job execution time by tenant (summed across retries).", 1e9},
	"e2e":           {"hth_job_e2e_seconds", "Job end-to-end latency (submit to verdict) by tenant.", 1e9},
	"deadline_burn": {"hth_job_deadline_burn_ratio", "Fraction of the job deadline consumed by execution, by tenant.", 1e6},
}

// writeLatencyFamilies renders the per-(stage, tenant) latency series
// as genuine Prometheus histograms: cumulative le buckets, _sum and
// _count per tenant. Series arrive sorted by (stage, tenant) from
// Snapshot, so output is byte-stable.
func writeLatencyFamilies(pw *promWriter, series []LatencySeries) {
	lastStage := ""
	for _, ls := range series {
		fam, ok := latencyFamilies[ls.Stage]
		if !ok {
			fam.name = "hth_job_" + sanitizeMetricName(ls.Stage) + "_raw"
			fam.help = "Latency stage in raw units."
			fam.div = 1
		}
		if ls.Stage != lastStage {
			pw.header(fam.name, "histogram", fam.help)
			lastStage = ls.Stage
		}
		var cum uint64
		for _, b := range ls.Buckets {
			cum += b.Count
			pw.printf("%s_bucket{tenant=%q,le=%q} %d\n", fam.name, ls.Tenant,
				strconv.FormatFloat(float64(b.Value)/fam.div, 'g', -1, 64), cum)
		}
		pw.printf("%s_bucket{tenant=%q,le=\"+Inf\"} %d\n", fam.name, ls.Tenant, ls.Count)
		pw.printf("%s_sum{tenant=%q} %s\n", fam.name, ls.Tenant,
			strconv.FormatFloat(float64(ls.Sum)/fam.div, 'g', -1, 64))
		pw.printf("%s_count{tenant=%q} %d\n", fam.name, ls.Tenant, ls.Count)
	}
}

// promWriter accumulates the first write error so WritePrometheus
// stays linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *promWriter) header(name, typ, help string) {
	if help != "" {
		p.printf("# HELP %s %s\n", name, help)
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

func sortedKeys(m map[string]uint64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// sanitizeMetricName folds a registry name ("taint.union_cache_hit_rate")
// into the Prometheus metric-name alphabet.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
