package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4), the wire form the introspection
// server serves on /metrics. The output is byte-stable for a given
// snapshot: families and label values are emitted in sorted order and
// no timestamp is attached, so a deterministic run exposes a
// deterministic page (modulo the wall-clock throughput gauge).
//
// The flat snapshot counters map onto labelled families:
//
//	events.<kind>    → hth_events_total{kind="<kind>"}
//	syscall.<name>   → hth_syscalls_total{name="<name>"}
//	rule.<name>      → hth_rule_fires_total{rule="<name>"}
//	warning.<name>   → hth_warnings_total{rule="<name>"}
//	chaos.<name>     → hth_chaos_faults_total{kind="<name>"}
//
// Gauges become hth_<name> with non-alphanumerics folded to '_', and
// discrete distributions ("taint.width") become one labelled series
// per bucket value.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	pw := &promWriter{w: w}

	type family struct {
		name, label, help string
	}
	families := []struct {
		prefix string
		family
	}{
		{"chaos.", family{"hth_chaos_faults_total", "kind", "Injected chaos faults by kind."}},
		{"events.", family{"hth_events_total", "kind", "Observed events by kind."}},
		{"job_aborted.", family{"hth_jobs_aborted_total", "tenant", "Service jobs aborted during drain by tenant."}},
		{"job_done.", family{"hth_jobs_done_total", "tenant", "Service jobs terminated by tenant."}},
		{"job_shed.", family{"hth_jobs_shed_total", "tenant", "Service jobs admitted with degraded features by tenant."}},
		{"job_submitted.", family{"hth_jobs_submitted_total", "tenant", "Service jobs admitted by tenant."}},
		{"rule.", family{"hth_rule_fires_total", "rule", "Expert-system rule firings by rule."}},
		{"syscall.", family{"hth_syscalls_total", "name", "Tracked guest system calls by name."}},
		{"warning.", family{"hth_warnings_total", "rule", "Policy warnings by rule."}},
	}
	grouped := make(map[string]map[string]uint64)
	var other []string
	for k := range s.Counters {
		matched := false
		for _, f := range families {
			if strings.HasPrefix(k, f.prefix) {
				if grouped[f.name] == nil {
					grouped[f.name] = make(map[string]uint64)
				}
				grouped[f.name][k[len(f.prefix):]] = s.Counters[k]
				matched = true
				break
			}
		}
		if !matched {
			other = append(other, k)
		}
	}
	for _, f := range families {
		vals := grouped[f.name]
		if len(vals) == 0 {
			continue
		}
		pw.header(f.name, "counter", f.help)
		for _, lv := range sortedKeys(vals) {
			pw.printf("%s{%s=%q} %d\n", f.name, f.label, lv, vals[lv])
		}
	}
	if len(other) > 0 {
		sort.Strings(other)
		pw.header("hth_counter_total", "counter", "Uncategorized counters by name.")
		for _, k := range other {
			pw.printf("hth_counter_total{name=%q} %d\n", k, s.Counters[k])
		}
	}

	gnames := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		mn := "hth_" + sanitizeMetricName(name)
		pw.header(mn, "gauge", "")
		pw.printf("%s %s\n", mn, strconv.FormatFloat(s.Gauges[name], 'g', -1, 64))
	}

	hnames := make([]string, 0, len(s.Hists))
	for name := range s.Hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		mn := "hth_" + sanitizeMetricName(name)
		pw.header(mn, "gauge", "Discrete distribution: count per value.")
		for _, b := range s.Hists[name] {
			pw.printf("%s{value=\"%d\"} %d\n", mn, b.Value, b.Count)
		}
	}
	return pw.err
}

// promWriter accumulates the first write error so WritePrometheus
// stays linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *promWriter) header(name, typ, help string) {
	if help != "" {
		p.printf("# HELP %s %s\n", name, help)
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

func sortedKeys(m map[string]uint64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// sanitizeMetricName folds a registry name ("taint.union_cache_hit_rate")
// into the Prometheus metric-name alphabet.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
