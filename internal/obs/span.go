package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the span plane of the observability layer: a per-job
// trace made of wall-clock spans (SpanRecorder), a transition-sampled
// per-tier time attributor for the execution engine (TierTimer), and
// an alloc-free fixed-bucket latency histogram for the per-tenant SLO
// rollups (LatencyHist).
//
// Spans are deliberately minimal — a name, a parent, two nanosecond
// timestamps, and a status string — because everything richer (the
// Perfetto view, the latency histograms, the /healthz rollups) is
// derived from them after the fact. Span IDs are process-unique so a
// multi-job JSONL stream can be re-threaded into per-trace timelines
// from span.start/span.end events alone.

// spanIDs hands out process-unique span IDs across all recorders, so
// an end event (which carries only the ID) is unambiguous even when
// many jobs interleave on one bus.
var spanIDs atomic.Uint64

// Span is one timed interval in a trace. Times are wall-clock
// nanoseconds since the Unix epoch (derived from a monotonic reading,
// so durations are immune to clock steps). End is 0 while the span is
// open.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Start  int64  `json:"start_ns"`
	End    int64  `json:"end_ns,omitempty"`
	Status string `json:"status,omitempty"`
	// Attr is a per-name numeric detail (for "exec" spans: the
	// 0-based attempt).
	Attr uint64 `json:"attr,omitempty"`
}

// Duration is End-Start, 0 while the span is open.
func (s *Span) Duration() int64 {
	if s.End == 0 {
		return 0
	}
	return s.End - s.Start
}

// SpanRecorder records the spans of one trace (one service job, or
// one batch run). It is safe for concurrent use: the service touches
// a job's recorder from the submitter goroutine, the shard worker,
// the retry timer, and Drain.
//
// Every span mutation can optionally be mirrored onto an event bus
// (SetPublish) as span.start/span.end events, which is how the flight
// recorder and JSONL traces capture timelines for free. The publish
// hook runs outside the recorder lock.
type SpanRecorder struct {
	mu     sync.Mutex
	trace  string
	epochW int64     // wall ns at construction
	epochM time.Time // monotonic anchor taken at the same instant
	spans  []Span
	open   int
	pub    func(Event)
}

// NewSpanRecorder builds a recorder for the given trace ID (the
// service uses the job ID).
func NewSpanRecorder(trace string) *SpanRecorder {
	now := time.Now()
	return &SpanRecorder{
		trace:  trace,
		epochW: now.UnixNano(),
		epochM: now,
	}
}

// SetPublish installs the event mirror. The hook receives span.start
// and span.end events with Layer unset; the installer stamps the
// layer (LayerService for job traces, LayerRun for batch runs) and
// routes to its bus.
func (r *SpanRecorder) SetPublish(fn func(Event)) {
	r.mu.Lock()
	r.pub = fn
	r.mu.Unlock()
}

// TraceID returns the trace identifier.
func (r *SpanRecorder) TraceID() string { return r.trace }

// Now is the recorder's clock: wall nanoseconds derived from the
// monotonic reading, comparable across recorders in one process.
func (r *SpanRecorder) Now() int64 {
	return r.epochW + time.Since(r.epochM).Nanoseconds()
}

// StartSpan opens a span under parent (0 = root) and returns its ID.
func (r *SpanRecorder) StartSpan(parent uint64, name string, attr uint64) uint64 {
	return r.StartSpanAt(parent, name, r.Now(), attr)
}

// StartSpanAt opens a span with an explicit start time, for intervals
// that began before the recorder existed (the service stamps the job
// root at the moment Submit was entered, before admission decided the
// job deserved a trace at all).
func (r *SpanRecorder) StartSpanAt(parent uint64, name string, startNS int64, attr uint64) uint64 {
	id := spanIDs.Add(1)
	r.mu.Lock()
	r.spans = append(r.spans, Span{ID: id, Parent: parent, Name: name, Start: startNS, Attr: attr})
	r.open++
	pub := r.pub
	r.mu.Unlock()
	if pub != nil {
		pub(Event{Kind: KindSpanStart, Time: uint64(startNS), Num: id, Num2: parent, Str: name, Str2: r.trace})
	}
	return id
}

// EndSpan closes a span with a status. It is idempotent — the first
// close wins — and tolerates id 0 and unknown IDs, so failure paths
// can close defensively without bookkeeping which path got there
// first.
func (r *SpanRecorder) EndSpan(id uint64, status string) {
	if id == 0 {
		return
	}
	end := r.Now()
	r.mu.Lock()
	var closed *Span
	for i := range r.spans {
		if r.spans[i].ID == id {
			if r.spans[i].End == 0 {
				r.spans[i].End = end
				r.spans[i].Status = status
				r.open--
				closed = &r.spans[i]
			}
			break
		}
	}
	var pub func(Event)
	var e Event
	if closed != nil {
		pub = r.pub
		e = Event{Kind: KindSpanEnd, Time: uint64(end), Num: id,
			Num2: uint64(end - closed.Start), Str: closed.Name, Str2: status}
	}
	r.mu.Unlock()
	if pub != nil {
		pub(e)
	}
}

// AddSpan records an already-finished interval with explicit times
// (runCore synthesizes the execute span and its tier children this
// way, from durations it measured itself). Both start and end events
// are mirrored.
func (r *SpanRecorder) AddSpan(parent uint64, name string, startNS, endNS int64, status string) uint64 {
	id := spanIDs.Add(1)
	r.mu.Lock()
	r.spans = append(r.spans, Span{ID: id, Parent: parent, Name: name,
		Start: startNS, End: endNS, Status: status})
	pub := r.pub
	r.mu.Unlock()
	if pub != nil {
		pub(Event{Kind: KindSpanStart, Time: uint64(startNS), Num: id, Num2: parent, Str: name, Str2: r.trace})
		pub(Event{Kind: KindSpanEnd, Time: uint64(endNS), Num: id,
			Num2: uint64(endNS - startNS), Str: name, Str2: status})
	}
	return id
}

// Spans returns a copy of the recorded spans in recording order.
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := make([]Span, len(r.spans))
	copy(cp, r.spans)
	return cp
}

// OpenCount is the number of spans not yet closed.
func (r *SpanRecorder) OpenCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.open
}

// Root returns the first recorded span (the trace root), or nil.
func (r *SpanRecorder) Root() *Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) == 0 {
		return nil
	}
	sp := r.spans[0]
	return &sp
}

// NamedDuration sums the duration of every closed span with the given
// name, returning the total and the span count. The service derives
// its queue/exec latency observations from this (a retried job has
// one queue and one exec span per attempt).
func (r *SpanRecorder) NamedDuration(name string) (total int64, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.spans {
		if r.spans[i].Name == name && r.spans[i].End != 0 {
			total += r.spans[i].End - r.spans[i].Start
			n++
		}
	}
	return total, n
}

// WriteChromeTrace renders the trace in Chrome trace_event JSON
// (loadable in Perfetto / chrome://tracing). Open spans are rendered
// up to "now" with an open=true arg.
func (r *SpanRecorder) WriteChromeTrace(w io.Writer) error {
	return WriteChromeSpans(w, map[string][]Span{r.trace: r.Spans()}, r.Now())
}

// WriteChromeSpans renders one or more traces as Chrome trace_event
// JSON: complete ("X") events, one tid per trace so multi-job dumps
// stack cleanly, microsecond timestamps. Traces are emitted in sorted
// trace-ID order and spans in start order, so output is deterministic
// for a given input.
func WriteChromeSpans(w io.Writer, traces map[string][]Span, nowNS int64) error {
	ids := make([]string, 0, len(traces))
	for id := range traces {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	for tid, id := range ids {
		spans := append([]Span(nil), traces[id]...)
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for _, sp := range spans {
			end, open := sp.End, ""
			if end == 0 {
				end, open = nowNS, `,"open":true`
			}
			if end < sp.Start {
				end = sp.Start
			}
			sep := ","
			if first {
				sep, first = "", false
			}
			if _, err := fmt.Fprintf(w,
				`%s{"name":%q,"cat":"hth","ph":"X","pid":1,"tid":%d,"ts":%d.%03d,"dur":%d.%03d,"args":{"trace":%q,"status":%q%s}}`,
				sep, sp.Name, tid+1,
				sp.Start/1000, sp.Start%1000, (end-sp.Start)/1000, (end-sp.Start)%1000,
				id, sp.Status, open); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// Execution tiers, in promotion order. These index TierTimer buckets
// and name the per-tier child spans ("tier.interp", ...).
const (
	TierInterp = iota
	TierSummary
	TierTrace
	TierClean
	numTiers
)

// TierNames names the tiers in TierTimer bucket order.
var TierNames = [numTiers]string{"interp", "summary", "trace", "clean"}

// TierTimer attributes execution wall time to the four engine tiers.
// It samples the clock only at tier *transitions*, not per block: the
// engine calls Touch(tier) on every block dispatch, and a dispatch
// that stays on the current tier costs one integer compare. Runs that
// settle onto one tier (the common case after warmup) therefore pay
// almost nothing for attribution.
//
// It is single-goroutine, like the engine hot path that drives it.
type TierTimer struct {
	cur  int32
	base time.Time
	last int64
	ns   [numTiers]int64
}

// NewTierTimer builds an idle timer; the first Touch starts it.
func NewTierTimer() *TierTimer { return &TierTimer{cur: -1} }

// Touch credits elapsed time to the current tier and switches to the
// given one. Same-tier calls return after one compare.
func (t *TierTimer) Touch(tier int32) {
	if t.cur == tier {
		return
	}
	t.switchTier(tier)
}

//go:noinline
func (t *TierTimer) switchTier(tier int32) {
	if t.cur < 0 {
		t.base = time.Now()
		t.cur, t.last = tier, 0
		return
	}
	now := time.Since(t.base).Nanoseconds()
	t.ns[t.cur] += now - t.last
	t.cur, t.last = tier, now
}

// Flush closes out the running tier and returns the per-tier totals.
func (t *TierTimer) Flush() [numTiers]int64 {
	if t.cur >= 0 {
		now := time.Since(t.base).Nanoseconds()
		t.ns[t.cur] += now - t.last
		t.last = now
	}
	return t.ns
}

// LatencyHist is an alloc-free fixed-shape latency histogram:
// log2-spaced microsecond buckets (1µs, 2µs, 4µs, ... ~134s, +Inf)
// over raw uint64 observations. Observe is lock-free-caller friendly
// (the registry serializes); the struct is plain value state so a
// registry map of them never reallocates per observation.
type LatencyHist struct {
	counts [latBuckets]uint64
	sum    uint64
	n      uint64
}

// latBuckets is 27 finite log2-µs buckets plus one overflow bucket.
const latBuckets = 28

// Observe records one raw observation (nanoseconds for the latency
// stages; the deadline-burn stage feeds scaled ratios through the
// same shape).
func (h *LatencyHist) Observe(v uint64) {
	i := bits.Len64(v / 1000)
	if i > latBuckets-1 {
		i = latBuckets - 1
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count and Sum expose the totals.
func (h *LatencyHist) Count() uint64 { return h.n }
func (h *LatencyHist) Sum() uint64   { return h.sum }

// latBound is bucket i's inclusive upper bound in raw units; the last
// bucket is unbounded and reports its lower bound's double.
func latBound(i int) uint64 { return 1000 << uint(i) }

// Quantile returns the q-quantile as the upper bound of the bucket
// containing that rank (a conservative estimate, never below the true
// value except in the overflow bucket). Returns 0 when empty.
func (h *LatencyHist) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q*float64(h.n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < latBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			return latBound(i)
		}
	}
	return latBound(latBuckets - 1)
}

// Merge adds another histogram's observations into this one (used to
// aggregate per-tenant series into the fleet rollup).
func (h *LatencyHist) Merge(o *LatencyHist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.sum += o.sum
	h.n += o.n
}

// Buckets returns the non-empty buckets as (upper bound, count) pairs
// in increasing bound order — the Snapshot wire form.
func (h *LatencyHist) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c != 0 {
			out = append(out, Bucket{Value: latBound(i), Count: c})
		}
	}
	return out
}

// cumulative returns all 28 cumulative counts (Prometheus le form).
func (h *LatencyHist) cumulative() [latBuckets]uint64 {
	var out [latBuckets]uint64
	var cum uint64
	for i, c := range h.counts {
		cum += c
		out[i] = cum
	}
	return out
}

// LatencyRollup is a /healthz-ready quantile summary of one latency
// stage, aggregated across tenants. Quantiles are milliseconds.
type LatencyRollup struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}
