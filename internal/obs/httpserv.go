package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Introspection is the live inspection endpoint of a monitored run: a
// Sink that feeds its own metrics registry, a flight-recorder ring,
// and a fan-out hub for live subscribers, served over net/http:
//
//	/metrics  — Prometheus text exposition of the registry
//	/events   — live SSE stream, filtered with the hth-trace selector
//	            syntax (?layer=vos&kind=syscall.enter&pid=1&rule=R)
//	/flight   — the flight-recorder contents as JSONL (?gz=1 for gzip)
//	/debug/pprof/ — the standard Go profiler endpoints
//
// The server's lifecycle is independent of any single run: attach the
// same Introspection to successive runs (metrics accumulate, the ring
// keeps rolling) and call Shutdown when the service retires. Event
// delivery is safe under concurrent HTTP readers, and — like Metrics —
// under concurrent publishing runs.
type Introspection struct {
	metrics *Metrics
	flight  *Flight

	mu      sync.Mutex
	subs    map[uint64]chan Event
	nextSub uint64
	dropped uint64 // events not delivered to a slow subscriber

	srvMu sync.Mutex
	srv   *http.Server
	lis   net.Listener
}

// NewIntrospection builds the endpoint around the given flight ring;
// a nil flight gets a private ring of DefaultFlightSize. The endpoint
// owns feeding the ring: attach the Introspection as the observer, not
// the ring as a second one.
func NewIntrospection(flight *Flight) *Introspection {
	if flight == nil {
		flight = NewFlight(0)
	}
	return &Introspection{
		metrics: NewMetrics(),
		flight:  flight,
		subs:    make(map[uint64]chan Event),
	}
}

// Metrics returns the endpoint's registry (the /metrics source).
func (in *Introspection) Metrics() *Metrics { return in.metrics }

// Flight returns the endpoint's flight ring (the /flight source).
func (in *Introspection) Flight() *Flight { return in.flight }

// Event feeds one event to the registry, the ring, and every live
// subscriber. Slow subscribers drop events rather than stalling the
// simulator.
func (in *Introspection) Event(e Event) {
	in.metrics.Event(e)
	in.flight.Event(e)
	in.mu.Lock()
	drops := 0
	for _, ch := range in.subs {
		select {
		case ch <- e:
		default:
			in.dropped++
			drops++
		}
	}
	in.mu.Unlock()
	// Mirror the drops into the registry so /metrics surfaces them
	// (hth_sse_dropped_total) — outside in.mu; Metrics has its own lock.
	for i := 0; i < drops; i++ {
		in.metrics.Inc("sse_slow_dropped")
	}
}

// Close is a no-op: the server outlives the run so post-run curls see
// the final state. Call Shutdown to stop serving.
func (in *Introspection) Close() error { return nil }

// Dropped reports how many events were not delivered to slow /events
// subscribers.
func (in *Introspection) Dropped() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dropped
}

func (in *Introspection) subscribe() (uint64, chan Event) {
	ch := make(chan Event, 1024)
	in.mu.Lock()
	in.nextSub++
	id := in.nextSub
	in.subs[id] = ch
	in.mu.Unlock()
	return id, ch
}

func (in *Introspection) unsubscribe(id uint64) {
	in.mu.Lock()
	delete(in.subs, id)
	in.mu.Unlock()
}

// Handler returns the endpoint's route mux (exposed for in-process
// tests; Start serves it).
func (in *Introspection) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", in.handleIndex)
	mux.HandleFunc("/metrics", in.handleMetrics)
	mux.HandleFunc("/events", in.handleEvents)
	mux.HandleFunc("/flight", in.handleFlight)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr (":0" picks a free port; read it back with Addr)
// and serves in a background goroutine until Shutdown.
func (in *Introspection) Start(addr string) error {
	in.srvMu.Lock()
	defer in.srvMu.Unlock()
	if in.srv != nil {
		return fmt.Errorf("obs: introspection server already started on %s", in.lis.Addr())
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: introspection: %w", err)
	}
	srv := &http.Server{Handler: in.Handler()}
	in.srv, in.lis = srv, lis
	go srv.Serve(lis) //nolint:errcheck // Serve returns on Shutdown
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (in *Introspection) Addr() string {
	in.srvMu.Lock()
	defer in.srvMu.Unlock()
	if in.lis == nil {
		return ""
	}
	return in.lis.Addr().String()
}

// Shutdown stops the server, closing live /events streams. The sink
// remains usable (and Start may be called again).
func (in *Introspection) Shutdown() error {
	in.srvMu.Lock()
	srv := in.srv
	in.srv, in.lis = nil, nil
	in.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (in *Introspection) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `hth introspection endpoints:
  /metrics        Prometheus text exposition
  /events         live SSE event stream (?layer=&kind=&pid=&rule=)
  /flight         flight-recorder ring as JSONL (?gz=1 for gzip)
  /debug/pprof/   Go profiler
`)
}

func (in *Introspection) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, in.metrics.Snapshot()) //nolint:errcheck // client gone
}

func (in *Introspection) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("gz") != "" {
		w.Header().Set("Content-Type", "application/gzip")
		in.flight.WriteGzip(w) //nolint:errcheck // client gone
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	in.flight.WriteJSONL(w) //nolint:errcheck // client gone
}

// handleEvents streams matching events as server-sent events: one
// `data:` line per event carrying the JSONL wire form. The stream
// runs until the client disconnects or the server shuts down.
func (in *Introspection) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	filter, err := ParseFilter(q.Get("layer"), q.Get("kind"), q.Get("pid"), q.Get("rule"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	id, ch := in.subscribe()
	defer in.unsubscribe(id)
	for {
		select {
		case <-r.Context().Done():
			return
		case e := <-ch:
			if !filter.Match(e) {
				continue
			}
			b, err := json.Marshal(wireEvent{
				Seq: e.Seq, Time: e.Time,
				Layer: e.Layer.String(), Kind: e.Kind.String(),
				PID: e.PID, Num: e.Num, Num2: e.Num2, Str: e.Str, Str2: e.Str2,
			})
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
