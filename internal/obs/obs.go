// Package obs is the observability layer of HTH: a unified event bus
// every subsystem publishes into — vos (syscall enter/exit with
// virtual timestamps, scheduler decisions, fd lifecycle), harrier
// (taint-state samples, basic-block counter rollovers), secpert (rule
// fires, warning emissions, CLIPS-style text), and chaos (injected
// faults) — plus composable sinks (JSONL streaming, a metrics
// registry, sampling) that consume the stream.
//
// The bus is built for a hot path that is almost always cold: a
// disabled bus is a nil *Bus, and every publish site is guarded by a
// single nil-check, so an unobserved run pays one predictable branch
// per event site and allocates nothing. An enabled bus delivers each
// event to every sink synchronously, in publish order, on the
// simulator's single thread — ordering within a run (and therefore
// within a pid) is total and matches the virtual clock.
//
// Events are fixed-shape values (no interfaces, no maps): a layer, a
// kind, a virtual timestamp, a pid, two numeric operands, and two
// string operands whose meaning is per-kind (documented on the Kind
// constants). Passing them by value keeps the enabled path
// allocation-free for counting sinks.
package obs

// Layer identifies the subsystem that published an event.
type Layer uint8

// Layers, in architectural order (guest world → monitor → policy).
const (
	// LayerRun is the hth run boundary (run start/end, end-of-run
	// metric snapshots).
	LayerRun Layer = iota
	// LayerVOS is the virtual OS: syscalls, scheduler, processes, fds.
	LayerVOS
	// LayerHarrier is the run-time monitor: taint and BB counters.
	LayerHarrier
	// LayerSecpert is the expert system: fires, warnings, transcript.
	LayerSecpert
	// LayerChaos is the fault injector.
	LayerChaos
	// LayerService is the long-running analysis service (job
	// lifecycle, worker health, admission decisions).
	LayerService

	numLayers
)

var layerNames = [numLayers]string{
	LayerRun:     "run",
	LayerVOS:     "vos",
	LayerHarrier: "harrier",
	LayerSecpert: "secpert",
	LayerChaos:   "chaos",
	LayerService: "service",
}

// String names the layer as it appears in JSONL traces.
func (l Layer) String() string {
	if l < numLayers {
		return layerNames[l]
	}
	return "layer?"
}

// LayerByName resolves a trace-syntax layer name.
func LayerByName(name string) (Layer, bool) {
	for l, n := range layerNames {
		if n == name {
			return Layer(l), true
		}
	}
	return 0, false
}

// Kind classifies an event within its layer. The comment on each
// constant documents the payload fields it fills.
type Kind uint8

// Event kinds.
const (
	// KindRunStart opens a run. Str = root program path.
	KindRunStart Kind = iota
	// KindRunEnd closes a run. Num = total guest instructions,
	// Num2 = host wall time in nanoseconds, Str = scheduler outcome
	// ("clean", "deadlock", "budget", "deadline").
	KindRunEnd
	// KindMetric is an end-of-run registry sample. Str = metric name,
	// Num = value. Metrics sinks fold these into gauges.
	KindMetric
	// KindMetricBucket is one bucket of an end-of-run distribution.
	// Str = histogram name, Num = bucket value, Num2 = count.
	KindMetricBucket

	// KindSyscallEnter is a tracked call about to execute (exactly
	// once per completed call; blocking calls notify when they are
	// about to make progress). Num = syscall number, Str = SYS_* name,
	// Str2 = path operand when the call takes one.
	KindSyscallEnter
	// KindSyscallExit is a tracked call's completion. Num = syscall
	// number, Num2 = result register, Str = SYS_* name.
	KindSyscallExit
	// KindProcSpawn is a process entering the table (start or fork).
	// Num = parent pid, Str = program path.
	KindProcSpawn
	// KindProcExit is a process terminating. Num = exit code as the
	// guest reported it (uint32), Str = "exit", "kill" or "fault".
	KindProcExit
	// KindSchedBlock is the scheduler parking a process on a blocked
	// call. Num = syscall number responsible when known.
	KindSchedBlock
	// KindSchedUnblock is a parked process resuming.
	KindSchedUnblock
	// KindSchedEnd is the scheduler returning. Str = outcome
	// ("clean", "deadlock", "budget", "deadline").
	KindSchedEnd
	// KindFDOpen is a descriptor allocation. Num = fd number,
	// Str = resource path/address, Str2 = descriptor kind.
	KindFDOpen
	// KindFDClose is a descriptor release. Num = fd number,
	// Str = resource path/address.
	KindFDClose

	// KindBBRoll is a basic-block execution counter crossing a
	// multiple of the rollover quantum (see harrier). Num = block
	// leader address, Num2 = count, Str = owning image.
	KindBBRoll
	// KindBBPromote is a hot basic block crossing the tier promotion
	// threshold and compiling into a dataflow summary. Num = block
	// leader address, Num2 = compiled op count, Str = owning image.
	KindBBPromote
	// KindBBTrace is a summarized block crossing the trace threshold
	// and compiling into a superblock trace (the third tier). Num =
	// trace head leader address, Num2 = compiled mop count, Str =
	// owning image. The kind itself is the tier discriminator replay
	// tools use to tell summary promotions (bb.promote) from trace
	// promotions.
	KindBBTrace
	// KindBBClean is a compiled block or trace demoting onto the
	// uninstrumented clean tier: its dataflow transfer was proved a
	// no-op against the current taint state, so entries run with
	// concrete semantics only until taint reaches their footprint.
	// Num = block/trace leader address, Num2 = footprint page count,
	// Str = owning image.
	KindBBClean
	// KindTaintSample is a periodic snapshot of the taint substrate,
	// published every sample quantum of instrumented instructions.
	// Num = union operations, Num2 = union-cache hits, Str2 unused.
	KindTaintSample
	// KindTaintTLB is the page-cache half of a taint sample.
	// Num = TLB probes, Num2 = TLB misses.
	KindTaintTLB

	// KindRuleFire is one expert-system rule firing. Num = fire
	// sequence number, Str = rule name.
	KindRuleFire
	// KindWarning is a policy warning. Num = severity (secpert
	// ordering), Str = rule name, Str2 = message.
	KindWarning
	// KindSecText is a chunk of the engine's CLIPS-style printout
	// (fire trace and warning rendering). Str = the exact bytes.
	KindSecText
	// KindSecAssert is a chunk of the Appendix-A.1 assert transcript.
	// Str = the exact bytes.
	KindSecAssert

	// KindChaosFault is one injected fault. Num = errno delivered,
	// Num2 = kind detail, Str = fault kind, Str2 = path/address.
	KindChaosFault

	// KindJobEnqueue is a service job admitted to a shard queue.
	// Str = tenant, Str2 = job id, Num = shard, Num2 = shed level.
	KindJobEnqueue
	// KindJobStart is a service job beginning execution on a worker.
	// Str = tenant, Str2 = job id, Num = shard, Num2 = attempt (0-based).
	KindJobStart
	// KindJobDone is a service job terminating with a result or a
	// typed error. Str = tenant, Str2 = outcome code ("done", an error
	// code, or "aborted"), Num = shard, Num2 = shed level.
	KindJobDone
	// KindJobShed is an admission decision degrading a job's feature
	// set under load. Str = tenant, Str2 = job id, Num = shed level.
	KindJobShed
	// KindJobAbort is a queued service job completed as a structured
	// abort during drain. Str = tenant, Str2 = job id.
	KindJobAbort
	// KindWorkerRecycle is a service worker goroutine replaced after a
	// task panic. Num = shard, Str = tenant of the panicking job,
	// Str2 = job id.
	KindWorkerRecycle

	// KindSpanStart opens a lifecycle span. Num = span id (process-
	// unique), Num2 = parent span id (0 = trace root), Str = span name,
	// Str2 = trace id (the job id for service traces). Time carries the
	// span's wall-clock start in nanoseconds — span events are the one
	// kind stamped from the host clock rather than the virtual clock,
	// because they measure where host time went.
	KindSpanStart
	// KindSpanEnd closes a lifecycle span. Num = span id, Num2 =
	// duration in nanoseconds, Str = span name, Str2 = status ("ok",
	// an outcome, or an error code). Time = wall-clock end ns.
	KindSpanEnd
	// KindJobLatency is one per-job latency observation the registry
	// folds into its fixed-bucket histograms. Str = tenant, Str2 =
	// stage ("queue", "exec", "e2e" in nanoseconds; "deadline_burn" as
	// ratio ×1e6), Num = value.
	KindJobLatency

	numKinds
)

var kindNames = [numKinds]string{
	KindRunStart:     "run.start",
	KindRunEnd:       "run.end",
	KindMetric:       "metric",
	KindMetricBucket: "metric.bucket",
	KindSyscallEnter: "syscall.enter",
	KindSyscallExit:  "syscall.exit",
	KindProcSpawn:    "proc.spawn",
	KindProcExit:     "proc.exit",
	KindSchedBlock:   "sched.block",
	KindSchedUnblock: "sched.unblock",
	KindSchedEnd:     "sched.end",
	KindFDOpen:       "fd.open",
	KindFDClose:      "fd.close",
	KindBBRoll:       "bb.roll",
	KindBBPromote:    "bb.promote",
	KindBBTrace:      "bb.trace",
	KindBBClean:      "bb.clean",
	KindTaintSample:  "taint.sample",
	KindTaintTLB:     "taint.tlb",
	KindRuleFire:     "rule.fire",
	KindWarning:      "warning",
	KindSecText:      "sec.text",
	KindSecAssert:    "sec.assert",
	KindChaosFault:   "chaos.fault",

	KindJobEnqueue:    "job.enqueue",
	KindJobStart:      "job.start",
	KindJobDone:       "job.done",
	KindJobShed:       "job.shed",
	KindJobAbort:      "job.abort",
	KindWorkerRecycle: "worker.recycle",

	KindSpanStart:  "span.start",
	KindSpanEnd:    "span.end",
	KindJobLatency: "job.latency",
}

// String names the kind as it appears in JSONL traces.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "kind?"
}

// KindByName resolves a trace-syntax kind name.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one observation. The payload fields Num/Num2/Str/Str2 are
// interpreted per Kind (see the Kind constants). Events are passed by
// value end to end; sinks that retain one must copy nothing — the
// strings are immutable.
type Event struct {
	// Seq is the bus-assigned publish sequence number, 1-based.
	// Delivery order equals Seq order for every sink.
	Seq uint64
	// Time is the virtual clock at publication (one tick per executed
	// guest instruction).
	Time uint64
	// Layer and Kind classify the event.
	Layer Layer
	Kind  Kind
	// PID is the guest process involved, 0 for machine-level events.
	PID int32
	// Num, Num2, Str, Str2 are the per-kind payload operands.
	Num  uint64
	Num2 uint64
	Str  string
	Str2 string
}

// Sink consumes a stream of events. Event is invoked synchronously in
// publish order; Close flushes any buffering when the run finishes.
// Sinks must tolerate events of kinds they do not understand (new
// kinds appear as layers grow).
type Sink interface {
	Event(e Event)
	Close() error
}

// Bus fans events out to its sinks. A nil *Bus is the disabled bus:
// every publish site guards with one nil-check and pays nothing else.
// A Bus is not safe for concurrent use; the simulation is
// single-threaded per run, matching the monitor's synchronous event
// model.
type Bus struct {
	sinks []Sink
	seq   uint64
	clock func() uint64
}

// NewBus builds a bus delivering to the given sinks in order.
func NewBus(sinks ...Sink) *Bus {
	return &Bus{sinks: sinks}
}

// SetClock installs the virtual-clock source used to stamp events
// published by writers that have no clock of their own (see Now).
func (b *Bus) SetClock(fn func() uint64) { b.clock = fn }

// Now reads the bus clock (0 without a clock source).
func (b *Bus) Now() uint64 {
	if b == nil || b.clock == nil {
		return 0
	}
	return b.clock()
}

// Publish stamps the event with the next sequence number and delivers
// it to every sink. Callers fill Time themselves when they hold the
// virtual clock; a zero Time is stamped from the bus clock source.
func (b *Bus) Publish(e Event) {
	b.seq++
	e.Seq = b.seq
	if e.Time == 0 && b.clock != nil {
		e.Time = b.clock()
	}
	for _, s := range b.sinks {
		s.Event(e)
	}
}

// Close closes every sink, returning the first error.
func (b *Bus) Close() error {
	if b == nil {
		return nil
	}
	var first error
	for _, s := range b.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Unwrapper is implemented by decorating sinks (Sampling) so registry
// discovery can reach the wrapped sink.
type Unwrapper interface {
	Unwrap() Sink
}

// FindMetrics returns every *Metrics registry reachable from the
// given sinks, unwrapping decorators.
func FindMetrics(sinks []Sink) []*Metrics {
	var out []*Metrics
	for _, s := range sinks {
		for s != nil {
			if m, ok := s.(*Metrics); ok {
				out = append(out, m)
				break
			}
			u, ok := s.(Unwrapper)
			if !ok {
				break
			}
			s = u.Unwrap()
		}
	}
	return out
}
