package obs

import (
	"bufio"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func startTestIntro(t *testing.T) *Introspection {
	t.Helper()
	in := NewIntrospection(NewFlight(64))
	if err := in.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { in.Shutdown() })
	return in
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestIntrospectionMetricsEndpoint(t *testing.T) {
	in := startTestIntro(t)
	in.Event(Event{Kind: KindSyscallEnter, Str: "SYS_read"})
	in.Event(Event{Kind: KindSyscallEnter, Str: "SYS_read"})
	in.Event(Event{Kind: KindWarning, Str: "found-exec"})

	code, body, hdr := get(t, "http://"+in.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		`hth_syscalls_total{name="SYS_read"} 2`,
		`hth_warnings_total{rule="found-exec"} 1`,
		"# TYPE hth_events_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestIntrospectionFlightEndpoint(t *testing.T) {
	in := startTestIntro(t)
	in.Event(Event{Seq: 1, Layer: LayerVOS, Kind: KindSyscallEnter, Str: "SYS_read"})
	in.Event(Event{Seq: 2, Layer: LayerSecpert, Kind: KindWarning, Str: "r"})

	code, body, hdr := get(t, "http://"+in.Addr()+"/flight")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []Event
	if err := ReadJSONL(strings.NewReader(body), func(e Event) error {
		events = append(events, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Seq != 1 || events[1].Seq != 2 {
		t.Fatalf("flight replay = %+v", events)
	}

	// Gzip flavour decodes to the same stream.
	code, gzBody, _ := get(t, "http://"+in.Addr()+"/flight?gz=1")
	if code != http.StatusOK {
		t.Fatalf("gz status = %d", code)
	}
	r, err := MaybeGzip(strings.NewReader(gzBody))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ReadJSONL(r, func(Event) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("gz flight replayed %d events, want 2", n)
	}
}

func TestIntrospectionEventsStream(t *testing.T) {
	in := startTestIntro(t)

	req, err := http.NewRequest("GET", "http://"+in.Addr()+"/events?kind=warning&rule=found-exec", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Publish after the subscription is live; the filtered stream must
	// carry only the matching warning.
	deadline := time.After(5 * time.Second)
	lines := make(chan string, 1)
	go func() {
		br := bufio.NewReader(resp.Body)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(line, "data: ") {
				lines <- strings.TrimSpace(strings.TrimPrefix(line, "data: "))
				return
			}
		}
	}()
	// The subscriber registers inside the handler goroutine; publish
	// until the line arrives.
	for {
		in.Event(Event{Seq: 7, Kind: KindSyscallEnter, Str: "SYS_read"})
		in.Event(Event{Seq: 8, Kind: KindWarning, Str: "other-rule"})
		in.Event(Event{Seq: 9, Time: 42, Layer: LayerSecpert, Kind: KindWarning, Str: "found-exec"})
		select {
		case got := <-lines:
			e, err := DecodeJSONL([]byte(got))
			if err != nil {
				t.Fatalf("stream line %q: %v", got, err)
			}
			if e.Kind != KindWarning || e.Str != "found-exec" {
				t.Fatalf("streamed event = %+v, want the filtered warning", e)
			}
			return
		case <-deadline:
			t.Fatal("no SSE line within deadline")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestIntrospectionEventsBadFilter(t *testing.T) {
	in := startTestIntro(t)
	code, _, _ := get(t, "http://"+in.Addr()+"/events?layer=bogus")
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
}

func TestIntrospectionPprofAndIndex(t *testing.T) {
	in := startTestIntro(t)
	code, body, _ := get(t, "http://"+in.Addr()+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	code, body, _ = get(t, "http://"+in.Addr()+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("pprof cmdline: %d", code)
	}
	code, _, _ = get(t, "http://"+in.Addr()+"/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", code)
	}
}

func TestIntrospectionStartErrors(t *testing.T) {
	in := startTestIntro(t)
	if err := in.Start("127.0.0.1:0"); err == nil {
		t.Fatal("second Start succeeded")
	}
	in2 := NewIntrospection(nil)
	if err := in2.Start(in.Addr()); err == nil {
		in2.Shutdown()
		t.Fatal("Start on an occupied address succeeded")
	}
	// Shutdown makes the instance restartable.
	if err := in.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := in.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("restart after Shutdown: %v", err)
	}
}

// failWriter errors on every write.
type failWriter struct{ calls int }

var errSink = errors.New("disk full")

func (f *failWriter) Write(p []byte) (int, error) { f.calls++; return 0, errSink }

// TestJSONLSurfacesWriteError is the failing-writer satellite: a sink
// whose writer dies mid-run must report it on Close, not produce a
// silently empty trace.
func TestJSONLSurfacesWriteError(t *testing.T) {
	fw := &failWriter{}
	s := JSONL(fw)
	// Enough events to overflow the 4 KiB buffer mid-run.
	for i := 0; i < 200; i++ {
		s.Event(Event{Seq: uint64(i), Layer: LayerVOS, Kind: KindSyscallEnter, Str: "SYS_read_with_padding_payload"})
	}
	err := s.Close()
	if !errors.Is(err, errSink) {
		t.Fatalf("Close = %v, want %v", err, errSink)
	}
	if fw.calls != 1 {
		t.Fatalf("writer called %d times after first error, want 1 (sticky error)", fw.calls)
	}
	// Idempotent: a second Close reports the same error.
	if err := s.Close(); !errors.Is(err, errSink) {
		t.Fatalf("second Close = %v", err)
	}
}

func TestIntrospectionSlowSubscriberDrops(t *testing.T) {
	in := NewIntrospection(nil)
	id, _ := in.subscribe()
	defer in.unsubscribe(id)
	// Never drain: the 1024-cap channel fills and publishes drop.
	for i := 0; i < 1500; i++ {
		in.Event(Event{Seq: uint64(i)})
	}
	if d := in.Dropped(); d != 1500-1024 {
		t.Fatalf("Dropped = %d, want %d", d, 1500-1024)
	}
}
