package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestFlightRingWrap(t *testing.T) {
	f := NewFlight(4)
	if f.Size() != 4 {
		t.Fatalf("Size = %d, want 4", f.Size())
	}
	for i := 1; i <= 10; i++ {
		f.Event(Event{Seq: uint64(i), Kind: KindSyscallEnter})
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10", f.Total())
	}
	got := f.Snapshot()
	if len(got) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(got))
	}
	// Oldest first: 7, 8, 9, 10.
	for i, e := range got {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("Snapshot[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestFlightPartialFill(t *testing.T) {
	f := NewFlight(8)
	f.Event(Event{Seq: 1})
	f.Event(Event{Seq: 2})
	got := f.Snapshot()
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("Snapshot = %+v, want seqs [1 2]", got)
	}
}

func TestFlightDefaultSize(t *testing.T) {
	if n := NewFlight(0).Size(); n != DefaultFlightSize {
		t.Fatalf("default size = %d, want %d", n, DefaultFlightSize)
	}
}

func TestFlightEventAllocFree(t *testing.T) {
	f := NewFlight(16)
	e := Event{Seq: 1, Layer: LayerVOS, Kind: KindSyscallEnter, Str: "SYS_read"}
	if allocs := testing.AllocsPerRun(200, func() { f.Event(e) }); allocs != 0 {
		t.Fatalf("Flight.Event allocates %.1f times per call, want 0", allocs)
	}
}

func TestFlightGzipRoundTrip(t *testing.T) {
	f := NewFlight(8)
	want := []Event{
		{Seq: 1, Time: 10, Layer: LayerVOS, Kind: KindSyscallEnter, PID: 1, Str: "SYS_read"},
		{Seq: 2, Time: 20, Layer: LayerSecpert, Kind: KindWarning, PID: 1, Str: "rule-x", Str2: "msg"},
	}
	for _, e := range want {
		f.Event(e)
	}
	var buf bytes.Buffer
	if err := f.WriteGzip(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := MaybeGzip(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := ReadJSONL(r, func(e Event) error { got = append(got, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestFlightDumpFileReplayable(t *testing.T) {
	f := NewFlight(8)
	f.Event(Event{Seq: 1, Kind: KindRunStart, Str: "/bin/x"})
	path := filepath.Join(t.TempDir(), "flight.jsonl.gz")
	if err := f.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	file, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	r, err := MaybeGzip(file)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ReadJSONL(r, func(e Event) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("dump replayed %d events, want 1", n)
	}
}

// MaybeGzip must pass plain streams through untouched.
func TestMaybeGzipPlain(t *testing.T) {
	f := NewFlight(4)
	f.Event(Event{Seq: 5, Kind: KindSyscallEnter, Str: "SYS_read"})
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := MaybeGzip(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ReadJSONL(r, func(e Event) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d events, want 1", n)
	}
}
