package obs

import (
	"compress/gzip"
	"io"
	"os"
	"sync"
)

// DefaultFlightSize is the ring capacity applied when NewFlight is
// given a non-positive size.
const DefaultFlightSize = 4096

// Flight is the flight recorder: a fixed-size ring buffer Sink that
// retains the last N events of every layer. The ring is preallocated
// at construction, so recording is allocation-free — the always-on
// post-mortem sink costs one mutexed store per event — and a dump on
// rule fire, guest fault, chaos containment, or deadline replays the
// final stretch of causality.
//
// Unlike most sinks, a Flight is safe for concurrent use: the
// introspection server reads (/flight) while the simulator publishes.
type Flight struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewFlight builds a recorder holding the last n events (n <= 0
// applies DefaultFlightSize).
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = DefaultFlightSize
	}
	return &Flight{buf: make([]Event, n)}
}

// Event stores e in the ring, evicting the oldest event when full.
func (f *Flight) Event(e Event) {
	f.mu.Lock()
	f.buf[f.next] = e
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
	}
	f.total++
	f.mu.Unlock()
}

// Close is a no-op; the ring stays readable after the run.
func (f *Flight) Close() error { return nil }

// Size returns the ring capacity.
func (f *Flight) Size() int { return len(f.buf) }

// Total returns how many events the recorder has seen (not how many
// it still holds).
func (f *Flight) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Snapshot copies the retained events in arrival order, oldest first.
func (f *Flight) Snapshot() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.buf)
	held := int(f.total)
	if f.total >= uint64(n) {
		held = n
	}
	out := make([]Event, 0, held)
	start := 0
	if held == n {
		start = f.next
	}
	for i := 0; i < held; i++ {
		out = append(out, f.buf[(start+i)%n])
	}
	return out
}

// WriteJSONL writes the retained events to w as JSON Lines — the same
// wire form the JSONL observer produces, so a flight dump replays with
// `hth-trace -replay`.
func (f *Flight) WriteJSONL(w io.Writer) error {
	for _, e := range f.Snapshot() {
		if err := writeWireEvent(w, e); err != nil {
			return err
		}
	}
	return nil
}

// WriteGzip writes the retained events as gzip-compressed JSONL (the
// default flight-dump encoding; hth-trace reads it transparently).
func (f *Flight) WriteGzip(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if err := f.WriteJSONL(zw); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

// DumpFile writes a gzip JSONL dump to path (created or truncated).
func (f *Flight) DumpFile(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteGzip(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
