package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// promSnapshot builds a deterministic snapshot exercising every
// exposition family: labelled counters, uncategorized counters,
// gauges (including a name needing sanitization), and a histogram.
func promSnapshot() *Snapshot {
	m := NewMetrics()
	for i := 0; i < 3; i++ {
		m.Event(Event{Kind: KindSyscallEnter, Str: "SYS_read"})
	}
	m.Event(Event{Kind: KindSyscallEnter, Str: "SYS_execve"})
	m.Event(Event{Kind: KindRuleFire, Str: "found-exec"})
	m.Event(Event{Kind: KindWarning, Str: "found-exec"})
	m.Event(Event{Kind: KindChaosFault, Str: "read-error"})
	m.Event(Event{Kind: KindMetric, Str: "harrier.instructions", Num: 294002})
	m.Event(Event{Kind: KindMetricBucket, Str: "taint.width", Num: 1, Num2: 40})
	m.Event(Event{Kind: KindMetricBucket, Str: "taint.width", Num: 2, Num2: 7})
	m.Event(Event{Kind: KindTaintSample, Num: 100, Num2: 80})
	return m.Snapshot()
}

// TestPrometheusGolden pins the exposition bytes: families in fixed
// order, label values sorted, no timestamps. A format change must be
// deliberate (-update) because live scrapers parse this page.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promSnapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusByteStable renders the same snapshot twice: map
// iteration order must not leak into the page.
func TestPrometheusByteStable(t *testing.T) {
	s := promSnapshot()
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of one snapshot differ")
	}
}

// TestMetricsSnapshotUnderPublish hammers Snapshot (and the /metrics
// render path) against a publishing run; run with -race this is the
// snapshot-safety gate for the introspection server.
func TestMetricsSnapshotUnderPublish(t *testing.T) {
	m := NewMetrics()
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		i := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			m.Event(Event{Kind: KindSyscallEnter, Str: "SYS_read", Num: i})
			m.Event(Event{Kind: KindMetric, Str: "g", Num: i})
			m.Event(Event{Kind: KindMetricBucket, Str: "h", Num: i % 8, Num2: 1})
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				s := m.Snapshot()
				var buf bytes.Buffer
				if err := WritePrometheus(&buf, s); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	<-writerDone
}
