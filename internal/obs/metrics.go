package obs

import (
	"sort"
	"sync"
)

// countKey keys a string-dimensioned counter without building the
// flattened "kind.name" string per event (the flat name is produced
// once, at Snapshot time).
type countKey struct {
	kind Kind
	s    string
}

// Metrics is a Sink that folds the event stream into a registry of
// counters, gauges, and histograms: per-syscall counts, rule-fire and
// warning counts by rule, chaos-fault counts by kind, taint-substrate
// rates (union-cache and shadow-TLB hit rates), guest instruction
// throughput, and the taint-set width distribution. It is safe to
// share one registry across sequential or concurrent runs; counts
// accumulate.
type Metrics struct {
	mu     sync.Mutex
	kinds  [numKinds]uint64
	byName map[countKey]uint64
	gauges map[string]float64
	hists  map[string][]Bucket
	extra  map[string]uint64

	// Per-tenant latency histograms by (stage, tenant), fed from
	// KindJobLatency events. The histograms are fixed-shape values so
	// an observation never allocates once the series exists.
	lat map[latKey]*LatencyHist

	// Tenant-label cardinality bound: once tenantCap distinct tenant
	// labels exist, further tenants fold into "other" and
	// tenantDropped counts the folds — a tenant-ID-spraying client
	// can't grow /metrics without bound.
	tenants       map[string]struct{}
	tenantCap     int
	tenantDropped uint64

	// Cumulative substrate counters arrive as running totals in
	// periodic samples; the last sample wins per run and run totals
	// accumulate at KindRunEnd via the metric events that follow it,
	// so here we only keep the latest observation.
	unions, unionHits    uint64
	tlbProbes, tlbMisses uint64
	instrs, wallNS       uint64
}

// latKey keys one latency series: a stage ("queue", "exec", "e2e",
// "deadline_burn") crossed with a (capped) tenant label.
type latKey struct {
	stage, tenant string
}

// DefaultTenantCap bounds distinct tenant label values per registry.
const DefaultTenantCap = 64

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		byName:    make(map[countKey]uint64),
		gauges:    make(map[string]float64),
		hists:     make(map[string][]Bucket),
		extra:     make(map[string]uint64),
		lat:       make(map[latKey]*LatencyHist),
		tenants:   make(map[string]struct{}),
		tenantCap: DefaultTenantCap,
	}
}

// SetTenantCap overrides the tenant-label cardinality bound (values
// < 1 keep the default). Labels already admitted stay.
func (m *Metrics) SetTenantCap(n int) {
	if n < 1 {
		return
	}
	m.mu.Lock()
	m.tenantCap = n
	m.mu.Unlock()
}

// tenantLabel admits or folds a tenant label under the cardinality
// cap. Caller holds m.mu.
func (m *Metrics) tenantLabel(t string) string {
	if t == "" || t == "other" {
		return t
	}
	if _, ok := m.tenants[t]; ok {
		return t
	}
	if len(m.tenants) >= m.tenantCap {
		m.tenantDropped++
		return "other"
	}
	m.tenants[t] = struct{}{}
	return t
}

// Event folds one event into the registry.
func (m *Metrics) Event(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.Kind < numKinds {
		m.kinds[e.Kind]++
	}
	switch e.Kind {
	case KindSyscallEnter, KindRuleFire, KindWarning, KindChaosFault:
		m.byName[countKey{e.Kind, e.Str}]++
	case KindJobEnqueue, KindJobDone, KindJobShed, KindJobAbort:
		// The job kinds carry the tenant in Str, so service counters
		// are tenant-labelled for free — behind the cardinality cap.
		m.byName[countKey{e.Kind, m.tenantLabel(e.Str)}]++
	case KindJobLatency:
		k := latKey{stage: e.Str2, tenant: m.tenantLabel(e.Str)}
		h := m.lat[k]
		if h == nil {
			h = &LatencyHist{}
			m.lat[k] = h
		}
		h.Observe(e.Num)
	case KindMetric:
		m.gauges[e.Str] = float64(e.Num)
	case KindMetricBucket:
		m.bucket(e.Str, e.Num, e.Num2)
	case KindTaintSample:
		m.unions, m.unionHits = e.Num, e.Num2
	case KindTaintTLB:
		m.tlbProbes, m.tlbMisses = e.Num, e.Num2
	case KindRunEnd:
		m.instrs += e.Num
		m.wallNS += e.Num2
	}
}

func (m *Metrics) bucket(name string, value, count uint64) {
	bs := m.hists[name]
	for i := range bs {
		if bs[i].Value == value {
			bs[i].Count += count
			return
		}
	}
	m.hists[name] = append(bs, Bucket{Value: value, Count: count})
}

// Close is a no-op; the registry stays readable after the run.
func (m *Metrics) Close() error { return nil }

// Bucket is one value of a discrete distribution.
type Bucket struct {
	Value uint64 `json:"value"`
	Count uint64 `json:"count"`
}

// Snapshot is a point-in-time, JSON-ready view of a Metrics registry.
type Snapshot struct {
	// Counters: event counts by kind ("events.syscall.enter") and by
	// kind+name dimension ("syscall.SYS_execve", "rule.found-exec",
	// "warning.found-exec", "chaos.read-error").
	Counters map[string]uint64 `json:"counters"`
	// Gauges: derived rates and end-of-run samples —
	// "guest_instrs_per_sec", "taint.union_cache_hit_rate",
	// "taint.tlb_hit_rate", the per-tier block shares
	// "harrier.tier_share.{interp,summary,trace,clean}", plus every
	// KindMetric sample by name.
	Gauges map[string]float64 `json:"gauges"`
	// Hists: discrete distributions, e.g. "taint.width" (taint-set
	// width in sources → number of live sets).
	Hists map[string][]Bucket `json:"hists,omitempty"`
	// Latency: per-(stage, tenant) fixed-bucket latency series. Bucket
	// values are inclusive upper bounds in the stage's raw units.
	Latency []LatencySeries `json:"latency,omitempty"`
}

// LatencySeries is one (stage, tenant) latency histogram in a
// snapshot.
type LatencySeries struct {
	Stage   string   `json:"stage"`
	Tenant  string   `json:"tenant,omitempty"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// counterPrefix maps a string-dimensioned kind to its flat-name
// prefix in Snapshot.Counters. The job prefixes carry the tenant as
// the dimension ("job_done.tenant-a"), which WritePrometheus renders
// as a tenant label.
var counterPrefix = map[Kind]string{
	KindSyscallEnter: "syscall.",
	KindRuleFire:     "rule.",
	KindWarning:      "warning.",
	KindChaosFault:   "chaos.",
	KindJobEnqueue:   "job_submitted.",
	KindJobDone:      "job_done.",
	KindJobShed:      "job_shed.",
	KindJobAbort:     "job_aborted.",
}

// Gauge returns the latest value of the named gauge, 0 when it has
// never been set. The analysis service reads its worker-health gauges
// back out of the registry through this accessor to drive admission
// decisions.
func (m *Metrics) Gauge(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// NamedCount returns the count of kind events carrying the given
// string dimension (e.g. KindJobDone per tenant).
func (m *Metrics) NamedCount(k Kind, name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byName[countKey{k, name}]
}

// Inc bumps a free-form registry counter by name ("sse_slow_dropped").
// These land in Snapshot.Counters verbatim; names with a Prometheus
// family (see exactCounters in prom.go) render under it.
func (m *Metrics) Inc(name string) {
	m.mu.Lock()
	m.extra[name]++
	m.mu.Unlock()
}

// Counter reads a free-form registry counter.
func (m *Metrics) Counter(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.extra[name]
}

// TenantDropped is the number of tenant-label observations folded
// into "other" by the cardinality cap.
func (m *Metrics) TenantDropped() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenantDropped
}

// LatencyRollup aggregates one latency stage across all tenants into
// millisecond quantiles. ok is false when the stage has no
// observations.
func (m *Metrics) LatencyRollup(stage string) (r LatencyRollup, ok bool) {
	agg := m.latAggregate(stage)
	if agg.Count() == 0 {
		return r, false
	}
	r.Count = agg.Count()
	r.P50MS = float64(agg.Quantile(0.50)) / 1e6
	r.P95MS = float64(agg.Quantile(0.95)) / 1e6
	r.P99MS = float64(agg.Quantile(0.99)) / 1e6
	return r, true
}

// LatencyQuantile returns the q-quantile of one stage across all
// tenants in the stage's raw units (nanoseconds, or ratio ×1e6 for
// deadline_burn). ok is false when empty.
func (m *Metrics) LatencyQuantile(stage string, q float64) (v uint64, ok bool) {
	agg := m.latAggregate(stage)
	if agg.Count() == 0 {
		return 0, false
	}
	return agg.Quantile(q), true
}

func (m *Metrics) latAggregate(stage string) LatencyHist {
	m.mu.Lock()
	defer m.mu.Unlock()
	var agg LatencyHist
	for k, h := range m.lat {
		if k.stage == stage {
			agg.Merge(h)
		}
	}
	return agg
}

// KindCount returns the total number of events of the given kind.
func (m *Metrics) KindCount(k Kind) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if k >= numKinds {
		return 0
	}
	return m.kinds[k]
}

// Snapshot flattens the registry. The receiver keeps accumulating;
// the snapshot is an independent copy.
func (m *Metrics) Snapshot() *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &Snapshot{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]float64),
	}
	for k, n := range m.kinds {
		if n != 0 {
			s.Counters["events."+Kind(k).String()] = n
		}
	}
	for k, n := range m.byName {
		s.Counters[counterPrefix[k.kind]+k.s] = n
	}
	for name, n := range m.extra {
		s.Counters[name] = n
	}
	if m.tenantDropped > 0 {
		s.Counters["tenant_labels_dropped"] = m.tenantDropped
	}
	for name, v := range m.gauges {
		s.Gauges[name] = v
	}
	if m.instrs > 0 && m.wallNS > 0 {
		s.Gauges["guest_instrs_per_sec"] = float64(m.instrs) / (float64(m.wallNS) / 1e9)
	}
	if m.unions > 0 {
		s.Gauges["taint.union_cache_hit_rate"] = float64(m.unionHits) / float64(m.unions)
	}
	if m.tlbProbes > 0 {
		s.Gauges["taint.tlb_hit_rate"] = float64(m.tlbProbes-m.tlbMisses) / float64(m.tlbProbes)
	}
	// Per-tier block shares: every retired block was credited to
	// exactly one tier (summary, trace, clean — interpreter gets the
	// remainder), so the four shares always sum to 1.
	if blocks := m.gauges["harrier.blocks"]; blocks > 0 {
		sum := m.gauges["harrier.tier.hits"]
		tr := m.gauges["harrier.trace.hits"]
		cl := m.gauges["harrier.clean.hits"]
		s.Gauges["harrier.tier_share.summary"] = sum / blocks
		s.Gauges["harrier.tier_share.trace"] = tr / blocks
		s.Gauges["harrier.tier_share.clean"] = cl / blocks
		s.Gauges["harrier.tier_share.interp"] = (blocks - sum - tr - cl) / blocks
	}
	if len(m.hists) > 0 {
		s.Hists = make(map[string][]Bucket, len(m.hists))
		for name, bs := range m.hists {
			cp := make([]Bucket, len(bs))
			copy(cp, bs)
			sort.Slice(cp, func(i, j int) bool { return cp[i].Value < cp[j].Value })
			s.Hists[name] = cp
		}
	}
	for k, h := range m.lat {
		s.Latency = append(s.Latency, LatencySeries{
			Stage: k.stage, Tenant: k.tenant,
			Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets(),
		})
	}
	sort.Slice(s.Latency, func(i, j int) bool {
		a, b := s.Latency[i], s.Latency[j]
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Tenant < b.Tenant
	})
	return s
}
