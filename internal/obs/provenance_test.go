package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestProvenanceInternStable(t *testing.T) {
	p := NewProvenance(0)
	a := p.Intern(`FILE:"/etc/passwd"`)
	b := p.Intern(`SOCKET:"evil.com"`)
	if a == b {
		t.Fatal("distinct labels shared an ID")
	}
	if again := p.Intern(`FILE:"/etc/passwd"`); again != a {
		t.Fatalf("re-intern changed ID: %d != %d", again, a)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
}

func TestProvenanceChainRendering(t *testing.T) {
	p := NewProvenance(0)
	id := p.Intern(`SOCKET:"evil.com"`)
	p.Entry(id, 1041, 1, "read fd 4")
	for i := 0; i < 312; i++ {
		p.Block(id, 1100, 1, 0x4012a0, "/bin/x", true)
	}
	p.Exit(id, 2210, 1, "write fd 1")
	want := `SOCKET:"evil.com" → read fd 4 @t=1041 → bb 0x4012a0 (tier ×312) → write fd 1 @t=2210`
	if got := p.Chain(id); got != want {
		t.Fatalf("Chain:\n got %q\nwant %q", got, want)
	}
}

func TestProvenanceConsecutiveMerge(t *testing.T) {
	p := NewProvenance(0)
	id := p.Intern("X")
	p.Block(id, 1, 1, 0x10, "img", false)
	p.Block(id, 2, 1, 0x10, "img", false)
	p.Block(id, 3, 1, 0x20, "img", false)
	p.Block(id, 4, 1, 0x10, "img", false)
	tr := p.Traces()[0]
	if len(tr.Hops) != 3 {
		t.Fatalf("hops = %d, want 3 (merged run, then 0x20, then 0x10 again)", len(tr.Hops))
	}
	if tr.Hops[0].Count != 2 {
		t.Fatalf("first hop count = %d, want 2", tr.Hops[0].Count)
	}
	// A tier-flag change breaks the merge: interp and summary
	// sightings of the same block stay distinguishable.
	p.Block(id, 5, 1, 0x10, "img", true)
	if tr := p.Traces()[0]; len(tr.Hops) != 4 {
		t.Fatalf("hops after tier flip = %d, want 4", len(tr.Hops))
	}
}

func TestProvenanceHopBoundKeepsEndpoints(t *testing.T) {
	p := NewProvenance(4)
	id := p.Intern("X")
	p.Entry(id, 1, 1, "read fd 3")
	for i := 0; i < 10; i++ {
		p.Block(id, uint64(i+2), 1, uint32(0x100+16*i), "img", false)
	}
	p.Exit(id, 99, 1, "write fd 1")
	tr := p.Traces()[0]
	interior := 0
	for _, h := range tr.Hops {
		if h.Kind == HopBlock || h.Kind == HopXfer {
			interior++
		}
	}
	if interior != 4 {
		t.Fatalf("interior hops = %d, want 4 (bounded)", interior)
	}
	if tr.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped)
	}
	if first, last := tr.Hops[0].Kind, tr.Hops[len(tr.Hops)-1].Kind; first != HopEntry || last != HopExit {
		t.Fatalf("endpoints = %v..%v, want entry..exit", first, last)
	}
	if ch := p.Chain(id); !strings.Contains(ch, "[+6 hops elided]") {
		t.Fatalf("chain does not note elided hops: %q", ch)
	}
}

func TestProvenanceEnsureEntry(t *testing.T) {
	p := NewProvenance(0)
	id := p.Intern(`BINARY:"/bin/x"`)
	p.EnsureEntry(id, 4, 1, "image map")
	p.EnsureEntry(id, 9, 1, "image map") // no-op: trace already has hops
	p.Block(id, 10, 1, 0x40, "/bin/x", false)
	p.EnsureEntry(id, 11, 1, "image map") // still a no-op
	tr := p.Traces()[0]
	if len(tr.Hops) != 2 || tr.Hops[0].Kind != HopEntry || tr.Hops[0].Time != 4 {
		t.Fatalf("hops = %+v, want [entry@4 block]", tr.Hops)
	}
}

func TestProvenanceChainOf(t *testing.T) {
	p := NewProvenance(0)
	p.Entry(p.Intern("A"), 1, 1, "read fd 3")
	if _, ok := p.ChainOf("B"); ok {
		t.Fatal("ChainOf reported an unseen label")
	}
	ch, ok := p.ChainOf("A")
	if !ok || !strings.HasPrefix(ch, "A → ") {
		t.Fatalf("ChainOf(A) = %q, %v", ch, ok)
	}
}

func TestProvenanceChromeTrace(t *testing.T) {
	p := NewProvenance(0)
	id := p.Intern(`FILE:"/x"`)
	p.Entry(id, 5, 1, "read fd 3")
	p.Block(id, 6, 1, 0x4000, "/bin/x", true)
	p.Block(id, 7, 1, 0x4000, "/bin/x", true)
	p.Exit(id, 8, 1, "write fd 1")

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    uint64         `json:"ts"`
			TID   uint64         `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// One thread_name metadata record plus three hop instants.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("traceEvents = %d, want 4", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Phase != "M" || doc.TraceEvents[0].Args["name"] != `FILE:"/x"` {
		t.Fatalf("metadata record = %+v", doc.TraceEvents[0])
	}
	bb := doc.TraceEvents[2]
	if bb.Phase != "i" || bb.Name != fmt.Sprintf("bb 0x%x", 0x4000) {
		t.Fatalf("block instant = %+v", bb)
	}
	if bb.Args["tier"] != true || bb.Args["count"] != float64(2) {
		t.Fatalf("block args = %+v, want tier=true count=2", bb.Args)
	}
}

func TestParseFilter(t *testing.T) {
	f, err := ParseFilter("vos", "syscall.enter", "1", "")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Match(Event{Layer: LayerVOS, Kind: KindSyscallEnter, PID: 1}) {
		t.Fatal("filter rejected a matching event")
	}
	if f.Match(Event{Layer: LayerVOS, Kind: KindSyscallEnter, PID: 2}) {
		t.Fatal("filter accepted a wrong pid")
	}
	if f.Match(Event{Layer: LayerHarrier, Kind: KindSyscallEnter, PID: 1}) {
		t.Fatal("filter accepted a wrong layer")
	}
	if _, err := ParseFilter("nope", "", "", ""); err == nil {
		t.Fatal("unknown layer accepted")
	}
	if _, err := ParseFilter("", "nope", "", ""); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParseFilter("", "", "abc", ""); err == nil {
		t.Fatal("bad pid accepted")
	}
	rf, err := ParseFilter("", "", "", "my-rule")
	if err != nil {
		t.Fatal(err)
	}
	if !rf.Match(Event{Kind: KindWarning, Str: "my-rule"}) {
		t.Fatal("rule filter rejected its warning")
	}
	if rf.Match(Event{Kind: KindSyscallEnter, Str: "my-rule"}) {
		t.Fatal("rule filter accepted a non-rule event")
	}
}
