package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestBusSequencingAndClock(t *testing.T) {
	var c Collector
	b := NewBus(&c)
	clock := uint64(100)
	b.SetClock(func() uint64 { return clock })

	b.Publish(Event{Layer: LayerVOS, Kind: KindSyscallEnter, PID: 1})
	clock = 200
	b.Publish(Event{Layer: LayerVOS, Kind: KindSyscallExit, PID: 1, Time: 150})
	b.Publish(Event{Layer: LayerHarrier, Kind: KindBBRoll, PID: 2})

	if len(c.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(c.Events))
	}
	for i, e := range c.Events {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	if c.Events[0].Time != 100 {
		t.Errorf("zero Time not stamped from clock: %d", c.Events[0].Time)
	}
	if c.Events[1].Time != 150 {
		t.Errorf("caller-stamped Time overwritten: %d", c.Events[1].Time)
	}
}

func TestNilBusIsDisabled(t *testing.T) {
	var b *Bus
	// The publish-site idiom: one nil-check, no call.
	if n := testing.AllocsPerRun(1000, func() {
		if b != nil {
			b.Publish(Event{Layer: LayerVOS, Kind: KindSyscallEnter})
		}
	}); n != 0 {
		t.Errorf("disabled-bus publish site allocates %v/op", n)
	}
	if err := b.Close(); err != nil {
		t.Errorf("nil bus Close: %v", err)
	}
	if b.Now() != 0 {
		t.Errorf("nil bus Now != 0")
	}
}

func TestEnabledBusZeroAllocForCountingSink(t *testing.T) {
	m := NewMetrics()
	b := NewBus(m)
	e := Event{Layer: LayerVOS, Kind: KindSyscallEnter, PID: 1, Num: 11, Str: "SYS_execve"}
	if n := testing.AllocsPerRun(1000, func() { b.Publish(e) }); n != 0 {
		t.Errorf("enabled bus with Metrics sink allocates %v/op", n)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := JSONL(&buf)
	in := []Event{
		{Seq: 1, Time: 3, Layer: LayerVOS, Kind: KindSyscallEnter, PID: 1, Num: 5, Str: "SYS_open", Str2: "/etc/passwd"},
		{Seq: 2, Time: 3, Layer: LayerSecpert, Kind: KindSecText, Str: "FIRE 1 check_exec\n"},
		{Seq: 3, Time: 9, Layer: LayerChaos, Kind: KindChaosFault, PID: 2, Num: 5, Num2: 1, Str: "read-error", Str2: "/tmp/x"},
	}
	for _, e := range in {
		sink.Event(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	var out []Event
	err := ReadJSONL(&buf, func(e Event) error { out = append(out, e); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, out[i], in[i])
		}
	}
}

func TestDecodeJSONLRejectsUnknownNames(t *testing.T) {
	if _, err := DecodeJSONL([]byte(`{"seq":1,"layer":"nope","kind":"metric"}`)); err == nil {
		t.Error("unknown layer accepted")
	}
	if _, err := DecodeJSONL([]byte(`{"seq":1,"layer":"vos","kind":"nope"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSampling(t *testing.T) {
	var c Collector
	s := Sampling(3, &c)
	for i := 1; i <= 10; i++ {
		s.Event(Event{Seq: uint64(i)})
	}
	if len(c.Events) != 3 {
		t.Fatalf("forwarded %d events, want 3", len(c.Events))
	}
	for i, want := range []uint64{3, 6, 9} {
		if c.Events[i].Seq != want {
			t.Errorf("sample %d: Seq = %d, want %d", i, c.Events[i].Seq, want)
		}
	}
	if Sampling(1, &c) != Sink(&c) {
		t.Error("Sampling(1) should return the sink unchanged")
	}
}

func TestFindMetricsUnwrapsDecorators(t *testing.T) {
	m := NewMetrics()
	sinks := []Sink{JSONL(&bytes.Buffer{}), Sampling(4, m)}
	got := FindMetrics(sinks)
	if len(got) != 1 || got[0] != m {
		t.Fatalf("FindMetrics = %v, want the wrapped registry", got)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	for _, e := range []Event{
		{Layer: LayerVOS, Kind: KindSyscallEnter, Num: 11, Str: "SYS_execve"},
		{Layer: LayerVOS, Kind: KindSyscallEnter, Num: 11, Str: "SYS_execve"},
		{Layer: LayerSecpert, Kind: KindRuleFire, Num: 1, Str: "check_exec"},
		{Layer: LayerSecpert, Kind: KindWarning, Num: 0, Str: "check_exec"},
		{Layer: LayerChaos, Kind: KindChaosFault, Num: 5, Str: "read-error"},
		{Layer: LayerHarrier, Kind: KindTaintSample, Num: 100, Num2: 80},
		{Layer: LayerHarrier, Kind: KindTaintTLB, Num: 1000, Num2: 100},
		{Layer: LayerRun, Kind: KindMetricBucket, Str: "taint.width", Num: 1, Num2: 7},
		{Layer: LayerRun, Kind: KindMetricBucket, Str: "taint.width", Num: 3, Num2: 2},
		{Layer: LayerRun, Kind: KindMetric, Str: "harrier.blocks", Num: 42},
		{Layer: LayerRun, Kind: KindRunEnd, Num: 2_000_000, Num2: 1_000_000_000},
	} {
		m.Event(e)
	}
	s := m.Snapshot()

	for name, want := range map[string]uint64{
		"events.syscall.enter": 2,
		"syscall.SYS_execve":   2,
		"rule.check_exec":      1,
		"warning.check_exec":   1,
		"chaos.read-error":     1,
	} {
		if got := s.Counters[name]; got != want {
			t.Errorf("Counters[%q] = %d, want %d", name, got, want)
		}
	}
	for name, want := range map[string]float64{
		"guest_instrs_per_sec":       2_000_000,
		"taint.union_cache_hit_rate": 0.8,
		"taint.tlb_hit_rate":         0.9,
		"harrier.blocks":             42,
	} {
		if got := s.Gauges[name]; got != want {
			t.Errorf("Gauges[%q] = %v, want %v", name, got, want)
		}
	}
	widths := s.Hists["taint.width"]
	if len(widths) != 2 || widths[0] != (Bucket{1, 7}) || widths[1] != (Bucket{3, 2}) {
		t.Errorf("taint.width hist = %v", widths)
	}
}

func TestTextSinksFilterKinds(t *testing.T) {
	var text, transcript strings.Builder
	ct := CLIPSText(&text)
	tr := CLIPSTranscript(&transcript)
	for _, e := range []Event{
		{Kind: KindSecText, Str: "FIRE 1 rule\n"},
		{Kind: KindSecAssert, Str: "CLIPS> (assert ...)\n"},
		{Kind: KindSyscallEnter, Str: "SYS_open"},
	} {
		ct.Event(e)
		tr.Event(e)
	}
	if text.String() != "FIRE 1 rule\n" {
		t.Errorf("CLIPSText rendered %q", text.String())
	}
	if transcript.String() != "FIRE 1 rule\nCLIPS> (assert ...)\n" {
		t.Errorf("CLIPSTranscript rendered %q", transcript.String())
	}
}

func TestNamesRoundTrip(t *testing.T) {
	for l := Layer(0); l < numLayers; l++ {
		got, ok := LayerByName(l.String())
		if !ok || got != l {
			t.Errorf("LayerByName(%q) = %v, %v", l.String(), got, ok)
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
}
