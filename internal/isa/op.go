// Package isa defines the guest instruction set executed by the HTH
// simulator and the interpreting CPU that exposes instrumentation
// hooks at the same granularities PIN offers Harrier (paper Table 3):
// instruction, basic block, routine (native), section and image.
//
// The ISA is a deliberately x86-flavoured 32-bit register machine:
// eight general registers (EAX..EDI), a flat little-endian address
// space, PUSH/POP/CALL/RET stack discipline, Linux-style `int 0x80`
// system calls, and a CPUID instruction whose outputs carry the
// HARDWARE data source (paper §5.1, §7.3.1).
package isa

import "fmt"

// Reg names a general-purpose register. The numbering follows the x86
// ModR/M order so disassembly reads naturally.
type Reg uint8

// General-purpose registers.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	// NumRegs is the number of general-purpose registers.
	NumRegs
)

var regNames = [NumRegs]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

// String returns the conventional lowercase register name.
func (r Reg) String() string {
	if r < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// RegByName resolves a register name ("eax") to its Reg, reporting
// whether the name is known.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	return 0, false
}

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes. Two-operand forms follow the Intel convention:
// the first operand is the destination.
const (
	NOP Op = iota
	HLT    // stop the processor (process exit without syscall)

	// Data movement.
	MOV  // mov dst, src (32-bit)
	MOVB // movb dst, src (8-bit; registers use their low byte)
	LEA  // lea reg, [mem] — loads the effective address

	// Arithmetic / logic (dst = dst OP src). Flags: ZF, SF from result.
	ADD
	SUB
	AND
	OR
	XOR
	MUL // low 32 bits of product
	DIVOP
	MODOP
	SHL
	SHR
	NOT // one operand
	NEG // one operand
	INC // one operand
	DEC // one operand

	// Comparison: set flags from dst-src / dst&src without writing dst.
	CMP
	TEST

	// Stack.
	PUSH
	POP

	// Control transfer.
	JMP
	JZ  // jump if ZF
	JNZ // jump if !ZF
	JL  // jump if signed less (last CMP)
	JLE
	JG
	JGE
	CALL
	RET

	// System interaction.
	INT    // int imm — imm 0x80 invokes the OS syscall handler
	CPUID  // loads processor identification into EAX..EDX (HARDWARE)
	RDTSC  // loads the cycle counter into EDX:EAX (HARDWARE)
	NATIVE // host-implemented library routine; behaves as body+RET

	numOps
)

// movesData marks the opcodes that move values between registers and
// memory. Compares, branches, NOP/HLT/INT and NATIVE only affect flags
// or control; instruction-level dataflow monitors act exactly on the
// marked set (see Hooks.OnInstrData).
var movesData = [numOps]bool{
	MOV: true, MOVB: true, LEA: true,
	ADD: true, SUB: true, AND: true, OR: true, XOR: true,
	MUL: true, DIVOP: true, MODOP: true, SHL: true, SHR: true,
	NOT: true, NEG: true, INC: true, DEC: true,
	PUSH: true, POP: true, CALL: true,
	CPUID: true, RDTSC: true,
}

// MovesData reports whether the opcode moves data, as opposed to only
// affecting flags or control.
func (o Op) MovesData() bool { return o < numOps && movesData[o] }

var opNames = [numOps]string{
	NOP: "nop", HLT: "hlt",
	MOV: "mov", MOVB: "movb", LEA: "lea",
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	MUL: "mul", DIVOP: "div", MODOP: "mod", SHL: "shl", SHR: "shr",
	NOT: "not", NEG: "neg", INC: "inc", DEC: "dec",
	CMP: "cmp", TEST: "test",
	PUSH: "push", POP: "pop",
	JMP: "jmp", JZ: "jz", JNZ: "jnz", JL: "jl", JLE: "jle", JG: "jg", JGE: "jge",
	CALL: "call", RET: "ret",
	INT: "int", CPUID: "cpuid", RDTSC: "rdtsc", NATIVE: "native",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpByName resolves a mnemonic to its opcode.
func OpByName(name string) (Op, bool) {
	for i, n := range opNames {
		if n == name && n != "" {
			return Op(i), true
		}
	}
	return 0, false
}

// IsControlTransfer reports whether the opcode may change EIP
// non-sequentially; such instructions end a basic block.
func (o Op) IsControlTransfer() bool {
	switch o {
	case JMP, JZ, JNZ, JL, JLE, JG, JGE, CALL, RET, INT, HLT, NATIVE:
		return true
	}
	return false
}

// IsCondJump reports whether the opcode is a conditional jump.
func (o Op) IsCondJump() bool {
	switch o {
	case JZ, JNZ, JL, JLE, JG, JGE:
		return true
	}
	return false
}

// OperandKind distinguishes the addressing modes of an operand.
type OperandKind uint8

// Operand kinds.
const (
	NoOperand  OperandKind = iota
	RegOperand             // register
	ImmOperand             // immediate constant (or resolved address)
	MemOperand             // memory: [disp] or [base+disp]
)

// Operand is one instruction operand. For MemOperand, the effective
// address is Imm plus the base register's value when HasBase is set;
// displacements are two's-complement so negative offsets wrap.
type Operand struct {
	Kind    OperandKind
	Reg     Reg    // register, or base register when HasBase
	HasBase bool   // memory operand uses Reg as base
	Imm     uint32 // immediate / displacement / absolute address
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{Kind: RegOperand, Reg: r} }

// Imm returns an immediate operand.
func Imm(v uint32) Operand { return Operand{Kind: ImmOperand, Imm: v} }

// Mem returns an absolute memory operand [addr].
func Mem(addr uint32) Operand { return Operand{Kind: MemOperand, Imm: addr} }

// MemBase returns a base+displacement memory operand [reg+disp].
func MemBase(r Reg, disp uint32) Operand {
	return Operand{Kind: MemOperand, Reg: r, HasBase: true, Imm: disp}
}

// String renders the operand in assembler syntax.
func (op Operand) String() string {
	switch op.Kind {
	case NoOperand:
		return ""
	case RegOperand:
		return op.Reg.String()
	case ImmOperand:
		return fmt.Sprintf("%#x", op.Imm)
	case MemOperand:
		if op.HasBase {
			if op.Imm == 0 {
				return fmt.Sprintf("[%s]", op.Reg)
			}
			if int32(op.Imm) < 0 {
				return fmt.Sprintf("[%s-%#x]", op.Reg, uint32(-int32(op.Imm)))
			}
			return fmt.Sprintf("[%s+%#x]", op.Reg, op.Imm)
		}
		return fmt.Sprintf("[%#x]", op.Imm)
	}
	return "?"
}

// InstrSize is the fixed encoded size of every guest instruction in
// guest address units; instruction i of a span sits at Base+i*InstrSize.
const InstrSize = 4

// Instr is one decoded guest instruction. A is the destination (or the
// branch target, or the sole operand); B is the source.
type Instr struct {
	Op     Op
	A, B   Operand
	Native int // index into the CPU native table when Op == NATIVE
	Line   int // source line in the originating assembly, for diagnostics
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	switch {
	case in.A.Kind == NoOperand:
		return in.Op.String()
	case in.B.Kind == NoOperand:
		return fmt.Sprintf("%s %s", in.Op, in.A)
	default:
		return fmt.Sprintf("%s %s, %s", in.Op, in.A, in.B)
	}
}
