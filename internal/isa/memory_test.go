package isa

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	if m.Load8(0x1234) != 0 || m.Load32(0xFFFF0000) != 0 {
		t.Error("unmapped memory not zero")
	}
	if m.Pages() != 0 {
		t.Error("reads allocated pages")
	}
}

func TestMemoryStoreLoad8(t *testing.T) {
	m := NewMemory()
	m.Store8(0x1000, 0xAB)
	if got := m.Load8(0x1000); got != 0xAB {
		t.Errorf("Load8 = %#x", got)
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory()
	m.Store32(0x2000, 0x11223344)
	if m.Load8(0x2000) != 0x44 || m.Load8(0x2003) != 0x11 {
		t.Error("not little-endian")
	}
	if m.Load32(0x2000) != 0x11223344 {
		t.Error("round trip failed")
	}
}

func TestMemoryCrossPageWord(t *testing.T) {
	m := NewMemory()
	addr := uint32(memPageSize - 2)
	m.Store32(addr, 0xDEADBEEF)
	if m.Load32(addr) != 0xDEADBEEF {
		t.Error("cross-page word failed")
	}
}

func TestMemoryBytes(t *testing.T) {
	m := NewMemory()
	data := []byte("hello world")
	m.WriteBytes(0x3000, data)
	if got := m.ReadBytes(0x3000, uint32(len(data))); !bytes.Equal(got, data) {
		t.Errorf("ReadBytes = %q", got)
	}
}

func TestMemoryCString(t *testing.T) {
	m := NewMemory()
	n := m.WriteCString(0x100, "/bin/ls")
	if n != 8 {
		t.Errorf("WriteCString returned %d", n)
	}
	if got := m.CString(0x100); got != "/bin/ls" {
		t.Errorf("CString = %q", got)
	}
	if got := m.CStringLen(0x100); got != 7 {
		t.Errorf("CStringLen = %d", got)
	}
	if got := m.CString(0x5000); got != "" {
		t.Errorf("CString of zeros = %q", got)
	}
}

func TestMemoryClone(t *testing.T) {
	m := NewMemory()
	m.Store32(0x1000, 42)
	c := m.Clone()
	c.Store32(0x1000, 99)
	if m.Load32(0x1000) != 42 {
		t.Error("clone mutation leaked")
	}
	if c.Load32(0x1000) != 99 {
		t.Error("clone write lost")
	}
}

func TestMemoryReset(t *testing.T) {
	m := NewMemory()
	m.Store8(0, 1)
	m.Reset()
	if m.Load8(0) != 0 || m.Pages() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestMemoryModelProperty(t *testing.T) {
	m := NewMemory()
	model := map[uint32]byte{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		addr := uint32(rng.Intn(4 * memPageSize))
		v := byte(rng.Intn(256))
		m.Store8(addr, v)
		model[addr] = v
	}
	for addr, want := range model {
		if got := m.Load8(addr); got != want {
			t.Fatalf("addr %#x = %#x, want %#x", addr, got, want)
		}
	}
}

// --- Fast-path coverage: word accesses, page straddles, TLB ---

func TestMemoryWordStraddlesPage(t *testing.T) {
	m := NewMemory()
	// 2 bytes on each side of the 0x1000 page boundary.
	m.Store32(0xFFE, 0xAABBCCDD)
	if got := m.Load32(0xFFE); got != 0xAABBCCDD {
		t.Fatalf("straddling word = %#x", got)
	}
	if m.Load8(0xFFE) != 0xDD || m.Load8(0xFFF) != 0xCC ||
		m.Load8(0x1000) != 0xBB || m.Load8(0x1001) != 0xAA {
		t.Fatal("straddling bytes wrong (endianness)")
	}
	if m.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", m.Pages())
	}
}

func TestMemoryUnalignedWithinPage(t *testing.T) {
	m := NewMemory()
	m.Store32(0x2001, 0x11223344)
	if got := m.Load32(0x2001); got != 0x11223344 {
		t.Fatalf("unaligned word = %#x", got)
	}
	// Byte view must agree with the little-endian layout.
	if m.Load8(0x2001) != 0x44 || m.Load8(0x2004) != 0x11 {
		t.Fatal("unaligned byte view wrong")
	}
}

func TestMemoryLoadFromUnmappedIsZero(t *testing.T) {
	m := NewMemory()
	if m.Load32(0x5000) != 0 || m.Load32(0x5FFE) != 0 {
		t.Fatal("unmapped load != 0")
	}
	if m.Pages() != 0 {
		t.Fatal("load allocated a page")
	}
}

func TestMemoryReadWriteBytesAcrossPages(t *testing.T) {
	m := NewMemory()
	data := make([]byte, 3*memPageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	m.WriteBytes(0xFF0, data)
	got := m.ReadBytes(0xFF0, uint32(len(data)))
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], data[i])
		}
	}
	// A hole in the middle reads as zero.
	if b := m.ReadBytes(0x100000, 8); b[0] != 0 || b[7] != 0 {
		t.Fatal("unmapped ReadBytes != 0")
	}
}

func TestMemoryCloneColdTLBIsolated(t *testing.T) {
	m := NewMemory()
	m.Store32(0x3000, 0xCAFE)
	_ = m.Load32(0x3000) // warm the TLB
	cl := m.Clone()
	cl.Store32(0x3000, 0xBEEF)
	if m.Load32(0x3000) != 0xCAFE {
		t.Fatal("clone write leaked into parent")
	}
	m.Store32(0x3000, 0x1234)
	if cl.Load32(0x3000) != 0xBEEF {
		t.Fatal("parent write leaked into clone")
	}
}

func TestMemoryResetInvalidatesTLB(t *testing.T) {
	m := NewMemory()
	m.Store32(0x4000, 0xFEED)
	_ = m.Load32(0x4000) // warm the TLB
	m.Reset()
	if m.Load32(0x4000) != 0 {
		t.Fatal("read-after-Reset saw stale TLB page")
	}
	if m.Pages() != 0 {
		t.Fatal("Reset left pages")
	}
}
