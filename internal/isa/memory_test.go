package isa

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	if m.Load8(0x1234) != 0 || m.Load32(0xFFFF0000) != 0 {
		t.Error("unmapped memory not zero")
	}
	if m.Pages() != 0 {
		t.Error("reads allocated pages")
	}
}

func TestMemoryStoreLoad8(t *testing.T) {
	m := NewMemory()
	m.Store8(0x1000, 0xAB)
	if got := m.Load8(0x1000); got != 0xAB {
		t.Errorf("Load8 = %#x", got)
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory()
	m.Store32(0x2000, 0x11223344)
	if m.Load8(0x2000) != 0x44 || m.Load8(0x2003) != 0x11 {
		t.Error("not little-endian")
	}
	if m.Load32(0x2000) != 0x11223344 {
		t.Error("round trip failed")
	}
}

func TestMemoryCrossPageWord(t *testing.T) {
	m := NewMemory()
	addr := uint32(memPageSize - 2)
	m.Store32(addr, 0xDEADBEEF)
	if m.Load32(addr) != 0xDEADBEEF {
		t.Error("cross-page word failed")
	}
}

func TestMemoryBytes(t *testing.T) {
	m := NewMemory()
	data := []byte("hello world")
	m.WriteBytes(0x3000, data)
	if got := m.ReadBytes(0x3000, uint32(len(data))); !bytes.Equal(got, data) {
		t.Errorf("ReadBytes = %q", got)
	}
}

func TestMemoryCString(t *testing.T) {
	m := NewMemory()
	n := m.WriteCString(0x100, "/bin/ls")
	if n != 8 {
		t.Errorf("WriteCString returned %d", n)
	}
	if got := m.CString(0x100); got != "/bin/ls" {
		t.Errorf("CString = %q", got)
	}
	if got := m.CStringLen(0x100); got != 7 {
		t.Errorf("CStringLen = %d", got)
	}
	if got := m.CString(0x5000); got != "" {
		t.Errorf("CString of zeros = %q", got)
	}
}

func TestMemoryClone(t *testing.T) {
	m := NewMemory()
	m.Store32(0x1000, 42)
	c := m.Clone()
	c.Store32(0x1000, 99)
	if m.Load32(0x1000) != 42 {
		t.Error("clone mutation leaked")
	}
	if c.Load32(0x1000) != 99 {
		t.Error("clone write lost")
	}
}

func TestMemoryReset(t *testing.T) {
	m := NewMemory()
	m.Store8(0, 1)
	m.Reset()
	if m.Load8(0) != 0 || m.Pages() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestMemoryModelProperty(t *testing.T) {
	m := NewMemory()
	model := map[uint32]byte{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		addr := uint32(rng.Intn(4 * memPageSize))
		v := byte(rng.Intn(256))
		m.Store8(addr, v)
		model[addr] = v
	}
	for addr, want := range model {
		if got := m.Load8(addr); got != want {
			t.Fatalf("addr %#x = %#x, want %#x", addr, got, want)
		}
	}
}
