package isa

import (
	"fmt"
	"sort"
)

// Span is a contiguous run of executable code belonging to one image.
// Instruction i sits at guest address Base + i*InstrSize. Spans are
// immutable once built (the simulator does not support self-modifying
// code; the paper notes PIN handles it but the prototype relies on it
// only for completeness).
type Span struct {
	Base   uint32
	Instrs []Instr
	Image  string // name of the owning image, e.g. "/bin/ls" or "libc.so"

	// Symbols maps instruction index -> routine name for addresses
	// that are entry points of named routines (used for routine-level
	// instrumentation and disassembly).
	Symbols map[int]string

	// BBLeader[i] is the instruction index of the basic-block leader
	// of instruction i; computed by AnalyzeBlocks.
	BBLeader []int

	// meta[i] packs the per-instruction dispatch bits the fetch loop
	// consults every cycle, so one byte load replaces a leader-slice
	// lookup and an opcode-table lookup on the hot path.
	meta []uint8

	// summaries[i] is the instrumentation layer's compiled summary for
	// the basic block led by instruction i (nil = none). The slice is
	// allocated lazily on the first SetBBSummary, so spans that never
	// promote a block cost one nil pointer. The slots hold opaque
	// values: the ISA only stores and dispatches them (see
	// Hooks.OnBBSummary); their meaning belongs to the monitor.
	summaries []any
}

// Span meta bits.
const (
	metaLeader = 1 << 0 // instruction leads its basic block
	metaData   = 1 << 1 // opcode moves data (Op.MovesData)
)

// NewSpan builds a span and computes its basic-block structure.
func NewSpan(base uint32, image string, instrs []Instr, symbols map[int]string) *Span {
	s := &Span{Base: base, Image: image, Instrs: instrs, Symbols: symbols}
	if s.Symbols == nil {
		s.Symbols = map[int]string{}
	}
	s.analyzeBlocks()
	return s
}

// End returns the first address past the span.
func (s *Span) End() uint32 { return s.Base + uint32(len(s.Instrs))*InstrSize }

// Contains reports whether addr falls inside the span and is
// instruction-aligned.
func (s *Span) Contains(addr uint32) bool {
	return addr >= s.Base && addr < s.End() && (addr-s.Base)%InstrSize == 0
}

// Index returns the instruction index of addr within the span.
func (s *Span) Index(addr uint32) int { return int((addr - s.Base) / InstrSize) }

// Addr returns the guest address of instruction index i.
func (s *Span) Addr(i int) uint32 { return s.Base + uint32(i)*InstrSize }

// analyzeBlocks computes basic-block leaders: instruction 0, every
// branch target inside the span, and every instruction following a
// control transfer (paper §7.4: a basic block is a sequence of
// instructions ending with a control transfer).
func (s *Span) analyzeBlocks() {
	n := len(s.Instrs)
	leader := make([]bool, n)
	if n == 0 {
		s.BBLeader = nil
		s.meta = nil
		return
	}
	leader[0] = true
	for i, in := range s.Instrs {
		if in.Op.IsControlTransfer() && i+1 < n {
			leader[i+1] = true
		}
		switch in.Op {
		case JMP, JZ, JNZ, JL, JLE, JG, JGE, CALL:
			if in.A.Kind == ImmOperand && s.Contains(in.A.Imm) {
				leader[s.Index(in.A.Imm)] = true
			}
		}
	}
	// Routine entry points are leaders too (callers may enter here
	// from other spans).
	for idx := range s.Symbols {
		if idx >= 0 && idx < n {
			leader[idx] = true
		}
	}
	s.BBLeader = make([]int, n)
	s.meta = make([]uint8, n)
	cur := 0
	for i := 0; i < n; i++ {
		if leader[i] {
			cur = i
			s.meta[i] |= metaLeader
		}
		s.BBLeader[i] = cur
		if s.Instrs[i].Op.MovesData() {
			s.meta[i] |= metaData
		}
	}
}

// BBSummary returns the compiled summary installed for the block led
// by instruction i, or nil.
func (s *Span) BBSummary(i int) any {
	if s.summaries == nil || i < 0 || i >= len(s.summaries) {
		return nil
	}
	return s.summaries[i]
}

// SetBBSummary installs (or replaces) the compiled summary for the
// block led by instruction i. The slot array is allocated on first
// use.
func (s *Span) SetBBSummary(i int, v any) {
	if i < 0 || i >= len(s.Instrs) {
		return
	}
	if s.summaries == nil {
		s.summaries = make([]any, len(s.Instrs))
	}
	s.summaries[i] = v
}

// DropSummaries discards every installed block summary, returning how
// many slots were occupied. The monitor calls it when the code the
// summaries were compiled from is about to be unmapped (execve).
func (s *Span) DropSummaries() int {
	n := 0
	for i, v := range s.summaries {
		if v != nil {
			n++
			s.summaries[i] = nil
		}
	}
	return n
}

// NumBlocks returns the number of distinct basic blocks in the span.
func (s *Span) NumBlocks() int {
	n := 0
	for i, l := range s.BBLeader {
		if i == l {
			n++
		}
	}
	return n
}

// Disassemble renders the span as readable assembly, one instruction
// per line, with addresses and routine labels.
func (s *Span) Disassemble() string {
	out := ""
	for i, in := range s.Instrs {
		if name, ok := s.Symbols[i]; ok {
			out += fmt.Sprintf("%s:\n", name)
		}
		out += fmt.Sprintf("  %08x  %s\n", s.Addr(i), in)
	}
	return out
}

// CodeMap resolves guest addresses to spans. Lookups cache the last
// span hit, since execution is overwhelmingly local.
type CodeMap struct {
	spans []*Span // sorted by Base
	last  *Span
}

// NewCodeMap returns an empty code map.
func NewCodeMap() *CodeMap { return &CodeMap{} }

// Add registers a span. Spans must not overlap; an overlap — a
// malformed or adversarial image whose layout collides with an
// already-mapped one — is reported as an error for the loader to
// surface as a structured load failure, never as a crash.
func (cm *CodeMap) Add(s *Span) error {
	for _, o := range cm.spans {
		if s.Base < o.End() && o.Base < s.End() {
			return fmt.Errorf("isa: overlapping code spans %#x (%s) and %#x (%s)",
				s.Base, s.Image, o.Base, o.Image)
		}
	}
	cm.spans = append(cm.spans, s)
	sort.Slice(cm.spans, func(i, j int) bool { return cm.spans[i].Base < cm.spans[j].Base })
	cm.last = nil
	return nil
}

// Find resolves addr to its span and instruction index.
func (cm *CodeMap) Find(addr uint32) (*Span, int, bool) {
	if s := cm.last; s != nil && s.Contains(addr) {
		return s, s.Index(addr), true
	}
	i := sort.Search(len(cm.spans), func(i int) bool { return cm.spans[i].End() > addr })
	if i < len(cm.spans) && cm.spans[i].Contains(addr) {
		cm.last = cm.spans[i]
		return cm.spans[i], cm.spans[i].Index(addr), true
	}
	return nil, 0, false
}

// Spans returns the registered spans in base order.
func (cm *CodeMap) Spans() []*Span { return cm.spans }

// SymbolAddr looks up a routine name across all spans.
func (cm *CodeMap) SymbolAddr(name string) (uint32, bool) {
	for _, s := range cm.spans {
		for idx, n := range s.Symbols {
			if n == name {
				return s.Addr(idx), true
			}
		}
	}
	return 0, false
}

// Symbolize resolves a code address to a symbolic frame,
// "image:symbol+0xdelta" (the +delta suffix is omitted at the symbol
// itself), using the nearest preceding routine symbol of the owning
// span. It reports false when no span covers addr or the span carries
// no symbol at or before it — callers fall back to the raw address.
// Unlike Find it never touches the lookup cache, so renderers may call
// it while the owning CPU is executing.
func (cm *CodeMap) Symbolize(addr uint32) (string, bool) {
	i := sort.Search(len(cm.spans), func(i int) bool { return cm.spans[i].End() > addr })
	if i >= len(cm.spans) || !cm.spans[i].Contains(addr) {
		return "", false
	}
	s := cm.spans[i]
	idx := s.Index(addr)
	best := -1
	for j := range s.Symbols {
		if j <= idx && j > best {
			best = j
		}
	}
	if best < 0 {
		return "", false
	}
	if delta := uint32(idx-best) * InstrSize; delta != 0 {
		return fmt.Sprintf("%s:%s+%#x", s.Image, s.Symbols[best], delta), true
	}
	return fmt.Sprintf("%s:%s", s.Image, s.Symbols[best]), true
}

// Clone returns a code map sharing the same (immutable) spans. The
// clone's cache is independent.
func (cm *CodeMap) Clone() *CodeMap {
	return &CodeMap{spans: append([]*Span(nil), cm.spans...)}
}

// Reset drops all spans (execve()).
func (cm *CodeMap) Reset() {
	cm.spans = nil
	cm.last = nil
}
