package isa

// Memory is a sparse, paged, little-endian 32-bit guest address space.
// Reads from unmapped pages return zero; writes allocate pages on
// demand. Every process owns one Memory; fork() clones it.
type Memory struct {
	pages map[uint32]*memPage
}

const (
	memPageShift = 12
	memPageSize  = 1 << memPageShift
	memPageMask  = memPageSize - 1
)

type memPage struct {
	data [memPageSize]byte
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*memPage)}
}

// Load8 reads one byte.
func (m *Memory) Load8(addr uint32) byte {
	p, ok := m.pages[addr>>memPageShift]
	if !ok {
		return 0
	}
	return p.data[addr&memPageMask]
}

// Store8 writes one byte.
func (m *Memory) Store8(addr uint32, v byte) {
	idx := addr >> memPageShift
	p, ok := m.pages[idx]
	if !ok {
		p = &memPage{}
		m.pages[idx] = p
	}
	p.data[addr&memPageMask] = v
}

// Load32 reads a little-endian 32-bit word.
func (m *Memory) Load32(addr uint32) uint32 {
	return uint32(m.Load8(addr)) |
		uint32(m.Load8(addr+1))<<8 |
		uint32(m.Load8(addr+2))<<16 |
		uint32(m.Load8(addr+3))<<24
}

// Store32 writes a little-endian 32-bit word.
func (m *Memory) Store32(addr uint32, v uint32) {
	m.Store8(addr, byte(v))
	m.Store8(addr+1, byte(v>>8))
	m.Store8(addr+2, byte(v>>16))
	m.Store8(addr+3, byte(v>>24))
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr, n uint32) []byte {
	out := make([]byte, n)
	for i := uint32(0); i < n; i++ {
		out[i] = m.Load8(addr + i)
	}
	return out
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for i, v := range b {
		m.Store8(addr+uint32(i), v)
	}
}

// CString reads a NUL-terminated string starting at addr, up to a
// sanity cap of 64 KiB.
func (m *Memory) CString(addr uint32) string {
	const cap = 64 << 10
	var out []byte
	for i := uint32(0); i < cap; i++ {
		b := m.Load8(addr + i)
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

// CStringLen returns the length of the NUL-terminated string at addr
// (excluding the terminator), capped at 64 KiB.
func (m *Memory) CStringLen(addr uint32) uint32 {
	const cap = 64 << 10
	for i := uint32(0); i < cap; i++ {
		if m.Load8(addr+i) == 0 {
			return i
		}
	}
	return cap
}

// WriteCString writes s followed by a NUL terminator at addr and
// returns the number of bytes written including the terminator.
func (m *Memory) WriteCString(addr uint32, s string) uint32 {
	m.WriteBytes(addr, []byte(s))
	m.Store8(addr+uint32(len(s)), 0)
	return uint32(len(s)) + 1
}

// Clone returns a deep copy of the address space (fork()).
func (m *Memory) Clone() *Memory {
	out := NewMemory()
	for idx, p := range m.pages {
		cp := &memPage{}
		cp.data = p.data
		out.pages[idx] = cp
	}
	return out
}

// Reset drops all pages (execve()).
func (m *Memory) Reset() {
	m.pages = make(map[uint32]*memPage)
}

// Pages returns the number of resident pages.
func (m *Memory) Pages() int { return len(m.pages) }
