package isa

import "encoding/binary"

// Memory is a sparse, paged, little-endian 32-bit guest address space.
// Reads from unmapped pages return zero; writes allocate pages on
// demand. Every process owns one Memory; fork() clones it.
//
// The hot paths mirror taint.Shadow's: 32-bit accesses that stay
// inside one page are a single page lookup plus one 4-byte move, and
// a small software TLB short-circuits the page map for the local
// access streams the §9 benchmarks show.
type Memory struct {
	pages map[uint32]*memPage

	// Software TLB, direct-mapped by the low page-index bits: a copy
	// kernel alternating between a source and a destination page — the
	// dominant §9 access shape — keeps both resident instead of
	// evicting one with every access. A nil page marks an empty slot.
	tlb [memTLBWays]memTLBEnt
}

type memTLBEnt struct {
	idx  uint32
	page *memPage
}

const (
	memPageShift = 12
	memPageSize  = 1 << memPageShift
	memPageMask  = memPageSize - 1
	memTLBWays   = 4 // direct-mapped slots; must be a power of two
)

type memPage struct {
	data [memPageSize]byte
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*memPage)}
}

// page resolves a page index through the TLB, returning nil when the
// page is unallocated.
func (m *Memory) page(idx uint32) *memPage {
	e := &m.tlb[idx&(memTLBWays-1)]
	if e.page != nil && e.idx == idx {
		return e.page
	}
	p := m.pages[idx]
	if p != nil {
		e.idx, e.page = idx, p
	}
	return p
}

// pageAlloc resolves a page index, allocating the page on demand.
func (m *Memory) pageAlloc(idx uint32) *memPage {
	if p := m.page(idx); p != nil {
		return p
	}
	p := &memPage{}
	m.pages[idx] = p
	e := &m.tlb[idx&(memTLBWays-1)]
	e.idx, e.page = idx, p
	return p
}

// Load8 reads one byte.
func (m *Memory) Load8(addr uint32) byte {
	p := m.page(addr >> memPageShift)
	if p == nil {
		return 0
	}
	return p.data[addr&memPageMask]
}

// Store8 writes one byte.
func (m *Memory) Store8(addr uint32, v byte) {
	m.pageAlloc(addr >> memPageShift).data[addr&memPageMask] = v
}

// Load32 reads a little-endian 32-bit word. Accesses that stay inside
// one page — aligned or not — are a single lookup.
func (m *Memory) Load32(addr uint32) uint32 {
	off := addr & memPageMask
	if off <= memPageSize-4 {
		p := m.page(addr >> memPageShift)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p.data[off : off+4])
	}
	return uint32(m.Load8(addr)) |
		uint32(m.Load8(addr+1))<<8 |
		uint32(m.Load8(addr+2))<<16 |
		uint32(m.Load8(addr+3))<<24
}

// Store32 writes a little-endian 32-bit word. The TLB probe is open-
// coded so the resident-page fast path — every store of a hot loop
// after the first — stays a single inlinable branch, not a call chain
// through pageAlloc.
func (m *Memory) Store32(addr uint32, v uint32) {
	off := addr & memPageMask
	if off <= memPageSize-4 {
		idx := addr >> memPageShift
		e := &m.tlb[idx&(memTLBWays-1)]
		p := e.page
		if p == nil || e.idx != idx {
			p = m.pageAlloc(idx)
		}
		binary.LittleEndian.PutUint32(p.data[off:off+4], v)
		return
	}
	m.Store8(addr, byte(v))
	m.Store8(addr+1, byte(v>>8))
	m.Store8(addr+2, byte(v>>16))
	m.Store8(addr+3, byte(v>>24))
}

// ReadBytes copies n bytes starting at addr into a new slice,
// page-at-a-time.
func (m *Memory) ReadBytes(addr, n uint32) []byte {
	out := make([]byte, n)
	for done := uint32(0); done < n; {
		off := (addr + done) & memPageMask
		chunk := memPageSize - off
		if chunk > n-done {
			chunk = n - done
		}
		if p := m.page((addr + done) >> memPageShift); p != nil {
			copy(out[done:done+chunk], p.data[off:off+chunk])
		}
		done += chunk
	}
	return out
}

// WriteBytes copies b into memory starting at addr, page-at-a-time.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for done := uint32(0); done < uint32(len(b)); {
		off := (addr + done) & memPageMask
		chunk := memPageSize - off
		if chunk > uint32(len(b))-done {
			chunk = uint32(len(b)) - done
		}
		p := m.pageAlloc((addr + done) >> memPageShift)
		copy(p.data[off:off+chunk], b[done:done+chunk])
		done += chunk
	}
}

// CString reads a NUL-terminated string starting at addr, up to a
// sanity cap of 64 KiB.
func (m *Memory) CString(addr uint32) string {
	const cap = 64 << 10
	var out []byte
	for i := uint32(0); i < cap; i++ {
		b := m.Load8(addr + i)
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

// CStringLen returns the length of the NUL-terminated string at addr
// (excluding the terminator), capped at 64 KiB.
func (m *Memory) CStringLen(addr uint32) uint32 {
	const cap = 64 << 10
	for i := uint32(0); i < cap; i++ {
		if m.Load8(addr+i) == 0 {
			return i
		}
	}
	return cap
}

// WriteCString writes s followed by a NUL terminator at addr and
// returns the number of bytes written including the terminator.
func (m *Memory) WriteCString(addr uint32, s string) uint32 {
	m.WriteBytes(addr, []byte(s))
	m.Store8(addr+uint32(len(s)), 0)
	return uint32(len(s)) + 1
}

// Clone returns a deep copy of the address space (fork()). The clone
// starts with a cold page cache.
func (m *Memory) Clone() *Memory {
	out := NewMemory()
	for idx, p := range m.pages {
		cp := &memPage{}
		cp.data = p.data
		out.pages[idx] = cp
	}
	return out
}

// Reset drops all pages (execve()).
func (m *Memory) Reset() {
	m.pages = make(map[uint32]*memPage)
	m.tlb = [memTLBWays]memTLBEnt{}
}

// Pages returns the number of resident pages.
func (m *Memory) Pages() int { return len(m.pages) }
