package isa

import (
	"strings"
	"testing"
)

func TestSpanGeometry(t *testing.T) {
	s := NewSpan(0x1000, "a.out", []Instr{{Op: NOP}, {Op: NOP}, {Op: HLT}}, nil)
	if s.End() != 0x100C {
		t.Errorf("End = %#x", s.End())
	}
	if !s.Contains(0x1004) || s.Contains(0x100C) || s.Contains(0x1002) {
		t.Error("Contains wrong (alignment or bounds)")
	}
	if s.Index(0x1008) != 2 || s.Addr(1) != 0x1004 {
		t.Error("Index/Addr wrong")
	}
}

func TestBasicBlockLeaders(t *testing.T) {
	// 0: mov (leader: first)
	// 1: jz 4
	// 2: mov (leader: follows control transfer)
	// 3: mov
	// 4: mov (leader: branch target)
	// 5: hlt
	instrs := []Instr{
		{Op: MOV, A: R(EAX), B: Imm(1)},
		{Op: JZ, A: Imm(0x1000 + 4*InstrSize)},
		{Op: MOV, A: R(EBX), B: Imm(2)},
		{Op: MOV, A: R(ECX), B: Imm(3)},
		{Op: MOV, A: R(EDX), B: Imm(4)},
		{Op: HLT},
	}
	s := NewSpan(0x1000, "a.out", instrs, nil)
	wantLeaders := []int{0, 0, 2, 2, 4, 4}
	for i, want := range wantLeaders {
		if s.BBLeader[i] != want {
			t.Errorf("BBLeader[%d] = %d, want %d", i, s.BBLeader[i], want)
		}
	}
	if s.NumBlocks() != 3 {
		t.Errorf("NumBlocks = %d, want 3", s.NumBlocks())
	}
}

func TestSymbolEntryIsLeader(t *testing.T) {
	instrs := []Instr{
		{Op: MOV, A: R(EAX), B: Imm(1)},
		{Op: MOV, A: R(EBX), B: Imm(2)}, // routine "helper" starts here
		{Op: RET},
	}
	s := NewSpan(0x2000, "lib.so", instrs, map[int]string{1: "helper"})
	if s.BBLeader[1] != 1 {
		t.Error("symbol entry not a leader")
	}
}

func TestEmptySpan(t *testing.T) {
	s := NewSpan(0x1000, "x", nil, nil)
	if s.NumBlocks() != 0 || s.Contains(0x1000) {
		t.Error("empty span misbehaves")
	}
}

func TestCodeMapFind(t *testing.T) {
	cm := NewCodeMap()
	s1 := NewSpan(0x1000, "a", []Instr{{Op: NOP}, {Op: NOP}}, nil)
	s2 := NewSpan(0x4000, "b", []Instr{{Op: HLT}}, nil)
	cm.Add(s2)
	cm.Add(s1)
	if got, idx, ok := cm.Find(0x1004); !ok || got != s1 || idx != 1 {
		t.Error("Find s1 failed")
	}
	if got, _, ok := cm.Find(0x4000); !ok || got != s2 {
		t.Error("Find s2 failed")
	}
	if _, _, ok := cm.Find(0x3000); ok {
		t.Error("Find hole succeeded")
	}
	if _, _, ok := cm.Find(0x1002); ok {
		t.Error("Find unaligned succeeded")
	}
	// Cached lookup still correct after hitting another span.
	cm.Find(0x4000)
	if got, _, ok := cm.Find(0x1000); !ok || got != s1 {
		t.Error("cached Find failed")
	}
}

func TestCodeMapOverlapError(t *testing.T) {
	cm := NewCodeMap()
	if err := cm.Add(NewSpan(0x1000, "a", []Instr{{Op: NOP}, {Op: NOP}}, nil)); err != nil {
		t.Fatalf("first Add: %v", err)
	}
	err := cm.Add(NewSpan(0x1004, "b", []Instr{{Op: NOP}}, nil))
	if err == nil {
		t.Fatal("no error on overlap")
	}
	if !strings.Contains(err.Error(), "overlapping") {
		t.Errorf("error = %v", err)
	}
	// The overlapping span must not have been registered.
	if len(cm.Spans()) != 1 {
		t.Errorf("overlapping span registered: %d spans", len(cm.Spans()))
	}
}

func TestCodeMapSymbolAddr(t *testing.T) {
	cm := NewCodeMap()
	cm.Add(NewSpan(0x1000, "a", []Instr{{Op: NOP}, {Op: RET}}, map[int]string{1: "f"}))
	addr, ok := cm.SymbolAddr("f")
	if !ok || addr != 0x1004 {
		t.Errorf("SymbolAddr = %#x, %v", addr, ok)
	}
	if _, ok := cm.SymbolAddr("missing"); ok {
		t.Error("found missing symbol")
	}
}

func TestCodeMapClone(t *testing.T) {
	cm := NewCodeMap()
	cm.Add(NewSpan(0x1000, "a", []Instr{{Op: NOP}}, nil))
	cl := cm.Clone()
	if _, _, ok := cl.Find(0x1000); !ok {
		t.Error("clone missing span")
	}
	cl.Reset()
	if _, _, ok := cm.Find(0x1000); !ok {
		t.Error("clone Reset affected original")
	}
}

func TestDisassemble(t *testing.T) {
	s := NewSpan(0x1000, "a", []Instr{
		{Op: MOV, A: R(EAX), B: Imm(5)},
		{Op: RET},
	}, map[int]string{0: "main"})
	d := s.Disassemble()
	if !strings.Contains(d, "main:") || !strings.Contains(d, "mov eax, 0x5") {
		t.Errorf("Disassemble output:\n%s", d)
	}
}

func TestOperandString(t *testing.T) {
	cases := map[string]Operand{
		"eax":       R(EAX),
		"0x10":      Imm(0x10),
		"[0x20]":    Mem(0x20),
		"[ebx]":     MemBase(EBX, 0),
		"[ebx+0x4]": MemBase(EBX, 4),
		"[ebp-0x8]": MemBase(EBP, ^uint32(7)), // -8 two's complement
	}
	for want, op := range cases {
		if got := op.String(); got != want {
			t.Errorf("Operand.String() = %q, want %q", got, want)
		}
	}
}

func TestOpRoundTrip(t *testing.T) {
	for op := NOP; op < numOps; op++ {
		name := op.String()
		got, ok := OpByName(name)
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted bogus")
	}
}

func TestRegRoundTrip(t *testing.T) {
	for r := EAX; r < NumRegs; r++ {
		got, ok := RegByName(r.String())
		if !ok || got != r {
			t.Errorf("RegByName(%q) failed", r)
		}
	}
}
