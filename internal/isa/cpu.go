package isa

import (
	"errors"
	"fmt"

	"repro/internal/taint"
)

// ErrHalted is returned by Step once the CPU has executed HLT or been
// halted externally.
var ErrHalted = errors.New("isa: cpu halted")

// Fault is an execution fault: bad fetch, division by zero, or an
// undefined operation. A faulting guest is killed by the OS.
type Fault struct {
	PC     uint32
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("isa: fault at %#x: %s", f.PC, f.Reason)
}

// SyscallHandler executes a system call on behalf of the guest; the
// virtual OS implements it. The handler reads arguments from the CPU
// registers (EAX = number, EBX/ECX/EDX/ESI/EDI = arguments) and writes
// the result to EAX, following the Linux i386 convention.
type SyscallHandler interface {
	Syscall(c *CPU)
}

// Native is a host-implemented guest library routine. When the CPU
// executes a NATIVE instruction it runs Fn and then performs RET.
type Native struct {
	Name string
	Fn   func(c *CPU)
}

// SummaryAction is the verdict Hooks.OnBBSummary returns for a block
// entry that landed on a compiled-summary slot.
type SummaryAction uint8

const (
	// SummaryDecline rejects the slot (foreign or stale summary); the
	// interpreter-tier hooks run as usual.
	SummaryDecline SummaryAction = iota
	// SummaryBlock accepts the block: the hook applied the whole
	// block's instrumentation in one call, and OnBB/OnInstr are
	// suppressed until the next block entry. The CPU still executes
	// the block's instructions one by one.
	SummaryBlock
	// SummaryTrace means the hook *executed* guest instructions itself
	// (a compiled superblock trace): it advanced EIP, Steps and the
	// flags/registers/memory to the trace's exit point. Step returns
	// immediately without fetching — the accompanying error, if any,
	// is the guest fault the trace stopped on.
	SummaryTrace
	// SummaryClean accepts the block on the uninstrumented tier: the
	// hook *proved* the block's whole dataflow transfer is a no-op
	// against the current taint state (clean footprint, no live
	// register tags to move), so it applied nothing at all. The fetch
	// loop runs the block with concrete semantics only — OnBB/OnInstr
	// stay suppressed exactly as for SummaryBlock, but no shadow
	// lookup, tag union, or transfer ever happened for the block.
	SummaryClean
)

// Hooks are the instrumentation points Harrier attaches to; all are
// optional. They correspond to the instrumentation granularities of
// paper Table 3 (instruction, basic block, routine).
type Hooks struct {
	// OnInstr runs before every instruction executes. Harrier's
	// Track_DataFlow analysis is installed here (paper Figure 5).
	OnInstr func(c *CPU, s *Span, idx int)
	// OnInstrData, when set, restricts OnInstr to data-moving
	// instructions (Op.MovesData): the fetch loop skips the callback
	// entirely for compares and control transfers, which Harrier's
	// dataflow analysis ignores (implicit flows are out of scope).
	// Leave false to run OnInstr before every instruction.
	OnInstrData bool
	// OnBB runs once per dynamic basic-block entry, before the leader
	// instruction. Harrier's Collect_BB_Frequency lives here.
	OnBB func(c *CPU, s *Span, leaderIdx int)
	// OnBBSummary is the fast-dispatch point of the tiered taint
	// engine: when a block entry lands on a leader that carries a
	// compiled summary (Span.BBSummary), the fetch loop offers it here
	// instead of calling OnBB. The returned SummaryAction selects the
	// tier: decline (interpreter hooks run as usual), accept the block
	// (instrumentation applied, CPU executes normally), or a trace ran
	// (the hook executed instructions itself; see CPU.TraceBudget).
	// The error return accompanies SummaryTrace when the trace stopped
	// on a guest fault, which Step propagates as its own.
	OnBBSummary func(c *CPU, s *Span, leaderIdx int, summary any) (SummaryAction, error)
	// OnNativePre/Post bracket host-implemented library routines.
	// Harrier's short-circuit dataflow (gethostbyname) lives here
	// (paper §7.2).
	OnNativePre  func(c *CPU, name string)
	OnNativePost func(c *CPU, name string)
}

// CPU is the interpreting guest processor. One CPU belongs to one
// process; fork() clones it. The CPU core never touches taint state —
// RegTags and Shadow exist for the instrumentation layer (Harrier) and
// are carried here so they travel with the architectural state.
type CPU struct {
	Regs  [NumRegs]uint32
	EIP   uint32
	ZF    bool // zero flag
	LT    bool // signed-less flag (set by CMP/arithmetic)
	Steps uint64

	// Taint state, maintained by the instrumentation layer.
	RegTags [NumRegs]taint.Tag
	Shadow  *taint.Shadow

	Mem     *Memory
	Code    *CodeMap
	Natives []Native
	Sys     SyscallHandler
	Hooks   Hooks

	// Ctx is an opaque owner pointer (the vos.Process), available to
	// hooks and syscall handlers.
	Ctx any

	// TraceBudget caps how many guest instructions a SummaryTrace hook
	// may execute in one Step call; the scheduler sets it to the
	// remainder of the current quantum before each Step so trace
	// execution never stretches a scheduling slice. Zero or negative
	// means unlimited (callers outside the scheduler).
	TraceBudget int

	Halted     bool
	jumped     bool // last instruction transferred control
	inSummary  bool // current block was accepted by OnBBSummary
	pcOverride *uint32

	// Sequential-fetch cursor: when the previous instruction fell
	// through, the next one is curSpan.Instrs[curIdx] and the CodeMap
	// lookup is skipped entirely. curOK gates validity — invalidated
	// by any control transfer, PC override, or externally assigned
	// EIP. curSpan itself is left in place when the cursor goes
	// invalid (clearing it would pay a GC write barrier per jump).
	curSpan *Span
	curIdx  int
	curOK   bool
}

// NewCPU returns a CPU with fresh memory and code map; callers supply
// shadow, natives and the syscall handler.
func NewCPU() *CPU {
	return &CPU{Mem: NewMemory(), Code: NewCodeMap(), jumped: true}
}

// SetPC overrides the next program counter; used by execve to enter a
// fresh image.
func (c *CPU) SetPC(addr uint32) {
	a := addr
	c.pcOverride = &a
	c.curOK = false
}

// ExitTrace records the architectural exit point of a SummaryTrace
// hook: the next PC and whether the trace left via a control transfer
// (which makes the following instruction a fresh block entry even when
// it is not a leader). The sequential-fetch cursor is invalidated —
// the trace moved EIP underneath it.
func (c *CPU) ExitTrace(pc uint32, jumped bool) {
	c.EIP = pc
	c.jumped = jumped
	c.curOK = false
}

// Halt stops the CPU; subsequent Step calls return ErrHalted.
func (c *CPU) Halt() { c.Halted = true }

// EffectiveAddr computes the guest address a memory operand refers to.
// It is exported for the instrumentation layer, which must resolve
// addresses before the instruction executes.
func (c *CPU) EffectiveAddr(op *Operand) uint32 {
	ea := op.Imm
	if op.HasBase {
		ea += c.Regs[op.Reg]
	}
	return ea
}

// fault builds an execution fault at the current PC. Kept out of line
// so the operand accessors stay under the inlining budget; the paths
// that reach it are unreachable for assembler-produced code.
//
//go:noinline
func (c *CPU) fault(reason string) error {
	return &Fault{PC: c.EIP, Reason: reason}
}

// ReadOperand returns the 32-bit value an operand denotes.
func (c *CPU) ReadOperand(op *Operand) (uint32, error) {
	switch op.Kind {
	case RegOperand:
		return c.Regs[op.Reg], nil
	case ImmOperand:
		return op.Imm, nil
	case MemOperand:
		return c.Mem.Load32(c.EffectiveAddr(op)), nil
	}
	return 0, c.fault("read of empty operand")
}

func (c *CPU) readOperand8(op *Operand) (uint32, error) {
	switch op.Kind {
	case RegOperand:
		return c.Regs[op.Reg] & 0xFF, nil
	case ImmOperand:
		return op.Imm & 0xFF, nil
	case MemOperand:
		return uint32(c.Mem.Load8(c.EffectiveAddr(op))), nil
	}
	return 0, c.fault("read of empty operand")
}

func (c *CPU) writeOperand(op *Operand, v uint32) error {
	switch op.Kind {
	case RegOperand:
		c.Regs[op.Reg] = v
		return nil
	case MemOperand:
		c.Mem.Store32(c.EffectiveAddr(op), v)
		return nil
	}
	return c.fault("write to non-writable operand")
}

func (c *CPU) writeOperand8(op *Operand, v uint32) error {
	switch op.Kind {
	case RegOperand:
		c.Regs[op.Reg] = (c.Regs[op.Reg] &^ 0xFF) | (v & 0xFF)
		return nil
	case MemOperand:
		c.Mem.Store8(c.EffectiveAddr(op), byte(v))
		return nil
	}
	return c.fault("byte write to non-writable operand")
}

func (c *CPU) setFlags(v uint32) {
	c.ZF = v == 0
	c.LT = int32(v) < 0
}

// branchTarget resolves the target of a control-transfer operand.
func (c *CPU) branchTarget(op *Operand) (uint32, error) {
	switch op.Kind {
	case ImmOperand:
		return op.Imm, nil
	case RegOperand:
		return c.Regs[op.Reg], nil
	case MemOperand:
		return c.Mem.Load32(c.EffectiveAddr(op)), nil
	}
	return 0, c.fault("branch with empty target")
}

func (c *CPU) push(v uint32) {
	c.Regs[ESP] -= 4
	c.Mem.Store32(c.Regs[ESP], v)
}

func (c *CPU) pop() uint32 {
	v := c.Mem.Load32(c.Regs[ESP])
	c.Regs[ESP] += 4
	return v
}

// Step fetches, instruments and executes one instruction.
func (c *CPU) Step() error {
	if c.Halted {
		return ErrHalted
	}
	var span *Span
	var idx int
	if c.curOK {
		span, idx = c.curSpan, c.curIdx
	} else {
		var ok bool
		span, idx, ok = c.Code.Find(c.EIP)
		if !ok {
			c.Halted = true
			return &Fault{PC: c.EIP, Reason: "fetch from unmapped code"}
		}
	}
	in := &span.Instrs[idx]
	m := span.meta[idx]

	// Basic-block entry: the instruction is its block's leader, or
	// control arrived here non-sequentially (paper §7.4). A leader
	// carrying a compiled summary is offered to OnBBSummary first;
	// acceptance covers the whole block, so the per-instruction hook
	// below is suppressed until the next entry. Mid-block entries
	// (computed jumps landing past the leader) never match metaLeader
	// and always take the interpreter tier.
	if (m&metaLeader != 0 || c.jumped) && (c.Hooks.OnBB != nil || c.Hooks.OnBBSummary != nil) {
		c.inSummary = false
		if m&metaLeader != 0 && span.summaries != nil && c.Hooks.OnBBSummary != nil {
			if sum := span.summaries[idx]; sum != nil {
				act, terr := c.Hooks.OnBBSummary(c, span, idx, sum)
				switch act {
				case SummaryBlock, SummaryClean:
					// Both cover the whole block — SummaryBlock because
					// the hook applied its transfer up front, SummaryClean
					// because the hook proved there is no transfer. Either
					// way the block executes concretely, hooks suppressed.
					c.inSummary = true
				case SummaryTrace:
					// The hook executed instructions itself: EIP, Steps,
					// flags and the architectural state already sit at
					// the trace's exit point. A non-nil error is a guest
					// fault the trace stopped on, reported exactly as if
					// the interpreter had executed the faulting
					// instruction.
					if terr != nil {
						c.Halted = true
						c.curOK = false
						return terr
					}
					c.curOK = false
					return nil
				}
			}
		}
		if !c.inSummary && c.Hooks.OnBB != nil {
			c.Hooks.OnBB(c, span, span.BBLeader[idx])
		}
	}
	if c.Hooks.OnInstr != nil && (m&metaData != 0 || !c.Hooks.OnInstrData) && !c.inSummary {
		c.Hooks.OnInstr(c, span, idx)
	}

	c.Steps++
	c.jumped = false
	next := c.EIP + InstrSize
	jump := func(addr uint32) {
		next = addr
		c.jumped = true
	}

	var err error
	switch in.Op {
	case NOP:
		// nothing
	case HLT:
		c.Halted = true
		c.jumped = true

	case MOV:
		var v uint32
		if v, err = c.ReadOperand(&in.B); err == nil {
			err = c.writeOperand(&in.A, v)
		}
	case MOVB:
		var v uint32
		if v, err = c.readOperand8(&in.B); err == nil {
			err = c.writeOperand8(&in.A, v)
		}
	case LEA:
		if in.B.Kind != MemOperand {
			err = &Fault{PC: c.EIP, Reason: "lea requires memory source"}
			break
		}
		err = c.writeOperand(&in.A, c.EffectiveAddr(&in.B))

	case ADD, SUB, AND, OR, XOR, MUL, DIVOP, MODOP, SHL, SHR:
		var a, b uint32
		if a, err = c.ReadOperand(&in.A); err != nil {
			break
		}
		if b, err = c.ReadOperand(&in.B); err != nil {
			break
		}
		var r uint32
		switch in.Op {
		case ADD:
			r = a + b
		case SUB:
			r = a - b
		case AND:
			r = a & b
		case OR:
			r = a | b
		case XOR:
			r = a ^ b
		case MUL:
			r = a * b
		case DIVOP:
			if b == 0 {
				err = &Fault{PC: c.EIP, Reason: "division by zero"}
			} else {
				r = a / b
			}
		case MODOP:
			if b == 0 {
				err = &Fault{PC: c.EIP, Reason: "division by zero"}
			} else {
				r = a % b
			}
		case SHL:
			r = a << (b & 31)
		case SHR:
			r = a >> (b & 31)
		}
		if err == nil {
			c.setFlags(r)
			err = c.writeOperand(&in.A, r)
		}

	case NOT, NEG, INC, DEC:
		var a uint32
		if a, err = c.ReadOperand(&in.A); err != nil {
			break
		}
		var r uint32
		switch in.Op {
		case NOT:
			r = ^a
		case NEG:
			r = -a
		case INC:
			r = a + 1
		case DEC:
			r = a - 1
		}
		c.setFlags(r)
		err = c.writeOperand(&in.A, r)

	case CMP:
		var a, b uint32
		if a, err = c.ReadOperand(&in.A); err != nil {
			break
		}
		if b, err = c.ReadOperand(&in.B); err != nil {
			break
		}
		c.ZF = a == b
		c.LT = int32(a) < int32(b)
	case TEST:
		var a, b uint32
		if a, err = c.ReadOperand(&in.A); err != nil {
			break
		}
		if b, err = c.ReadOperand(&in.B); err != nil {
			break
		}
		c.setFlags(a & b)

	case PUSH:
		var v uint32
		if v, err = c.ReadOperand(&in.A); err == nil {
			c.push(v)
		}
	case POP:
		err = c.writeOperand(&in.A, c.pop())

	case JMP:
		var t uint32
		if t, err = c.branchTarget(&in.A); err == nil {
			jump(t)
		}
	case JZ, JNZ, JL, JLE, JG, JGE:
		taken := false
		switch in.Op {
		case JZ:
			taken = c.ZF
		case JNZ:
			taken = !c.ZF
		case JL:
			taken = c.LT
		case JLE:
			taken = c.LT || c.ZF
		case JG:
			taken = !c.LT && !c.ZF
		case JGE:
			taken = !c.LT
		}
		// A conditional jump ends its basic block whether or not it
		// is taken; mark the transfer so the fall-through leader is
		// counted as a fresh block entry.
		c.jumped = true
		if taken {
			var t uint32
			if t, err = c.branchTarget(&in.A); err == nil {
				jump(t)
			}
		}
	case CALL:
		var t uint32
		if t, err = c.branchTarget(&in.A); err == nil {
			c.push(c.EIP + InstrSize)
			jump(t)
		}
	case RET:
		jump(c.pop())

	case INT:
		if in.A.Kind != ImmOperand || in.A.Imm != 0x80 {
			err = &Fault{PC: c.EIP, Reason: fmt.Sprintf("unsupported interrupt %v", in.A)}
			break
		}
		if c.Sys == nil {
			err = &Fault{PC: c.EIP, Reason: "int 0x80 with no OS attached"}
			break
		}
		c.jumped = true // a syscall ends the basic block
		c.Sys.Syscall(c)

	case CPUID:
		// Fixed processor identification, in the spirit of the x86
		// cpuid instruction (paper §5.1): the values are hardware-
		// provided and carry the HARDWARE data source.
		c.Regs[EAX] = 0x48544853 // "SHTH"
		c.Regs[EBX] = 0x696D5543 // "CUmi"
		c.Regs[ECX] = 0x756C6174 // "talu"
		c.Regs[EDX] = 0x726F2121 // "!!or"
	case RDTSC:
		c.Regs[EAX] = uint32(c.Steps)
		c.Regs[EDX] = uint32(c.Steps >> 32)

	case NATIVE:
		if in.Native < 0 || in.Native >= len(c.Natives) {
			err = &Fault{PC: c.EIP, Reason: "undefined native routine"}
			break
		}
		n := c.Natives[in.Native]
		if c.Hooks.OnNativePre != nil {
			c.Hooks.OnNativePre(c, n.Name)
		}
		n.Fn(c)
		if c.Hooks.OnNativePost != nil {
			c.Hooks.OnNativePost(c, n.Name)
		}
		jump(c.pop()) // native routines behave as body+RET

	default:
		err = &Fault{PC: c.EIP, Reason: fmt.Sprintf("undefined opcode %v", in.Op)}
	}

	if err != nil {
		c.Halted = true
		c.curOK = false
		return err
	}
	if c.pcOverride != nil {
		next = *c.pcOverride
		c.pcOverride = nil
		c.jumped = true
	}
	if c.Halted {
		// A syscall handler halted the process (exit / kill).
		c.curOK = false
		return nil
	}
	// Only touch the pointer field when it actually changes: a pointer
	// store pays the GC write barrier, and in straight-line code the
	// cached span is already the current one.
	if c.curOK = !c.jumped && idx+1 < len(span.Instrs); c.curOK {
		if c.curSpan != span {
			c.curSpan = span
		}
		c.curIdx = idx + 1
	}
	c.EIP = next
	return nil
}

// Clone duplicates the architectural and taint register state for
// fork(). Memory, shadow and code map are cloned by the caller, which
// owns their lifecycles.
func (c *CPU) Clone() *CPU {
	out := &CPU{
		Regs:    c.Regs,
		EIP:     c.EIP,
		ZF:      c.ZF,
		LT:      c.LT,
		Steps:   c.Steps,
		RegTags: c.RegTags,
		Natives: c.Natives,
		Sys:     c.Sys,
		Hooks:   c.Hooks,
		jumped:  true,
	}
	return out
}
