package isa

import (
	"errors"
	"testing"
)

// runProgram executes instrs starting at base until the CPU halts or
// maxSteps elapse, returning the CPU for inspection.
func runProgram(t *testing.T, instrs []Instr) *CPU {
	t.Helper()
	c := NewCPU()
	c.Code.Add(NewSpan(0x1000, "test", instrs, nil))
	c.EIP = 0x1000
	c.Regs[ESP] = 0x00100000
	for i := 0; i < 10000 && !c.Halted; i++ {
		if err := c.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if !c.Halted {
		t.Fatal("program did not halt")
	}
	return c
}

func TestMovImmediate(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: MOV, A: R(EAX), B: Imm(42)},
		{Op: HLT},
	})
	if c.Regs[EAX] != 42 {
		t.Errorf("eax = %d", c.Regs[EAX])
	}
}

func TestMovRegToReg(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: MOV, A: R(EAX), B: Imm(7)},
		{Op: MOV, A: R(EBX), B: R(EAX)},
		{Op: HLT},
	})
	if c.Regs[EBX] != 7 {
		t.Errorf("ebx = %d", c.Regs[EBX])
	}
}

func TestMovMemory(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: MOV, A: R(EAX), B: Imm(0xCAFE)},
		{Op: MOV, A: Mem(0x2000), B: R(EAX)},
		{Op: MOV, A: R(EBX), B: Mem(0x2000)},
		{Op: HLT},
	})
	if c.Regs[EBX] != 0xCAFE {
		t.Errorf("ebx = %#x", c.Regs[EBX])
	}
}

func TestMovBaseDisplacement(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: MOV, A: R(ESI), B: Imm(0x3000)},
		{Op: MOV, A: MemBase(ESI, 8), B: Imm(0x1234)},
		{Op: MOV, A: R(EAX), B: Mem(0x3008)},
		{Op: HLT},
	})
	if c.Regs[EAX] != 0x1234 {
		t.Errorf("eax = %#x", c.Regs[EAX])
	}
}

func TestMovByte(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: MOV, A: R(EAX), B: Imm(0xAABBCCDD)},
		{Op: MOVB, A: Mem(0x2000), B: R(EAX)},
		{Op: MOV, A: R(EBX), B: Mem(0x2000)},
		// movb into a register replaces only the low byte
		{Op: MOV, A: R(ECX), B: Imm(0xFFFF0000)},
		{Op: MOVB, A: R(ECX), B: Imm(0x42)},
		{Op: HLT},
	})
	if c.Regs[EBX] != 0xDD {
		t.Errorf("byte store leaked: ebx = %#x", c.Regs[EBX])
	}
	if c.Regs[ECX] != 0xFFFF0042 {
		t.Errorf("byte reg write: ecx = %#x", c.Regs[ECX])
	}
}

func TestLEA(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: MOV, A: R(EBX), B: Imm(0x100)},
		{Op: LEA, A: R(EAX), B: MemBase(EBX, 0x20)},
		{Op: HLT},
	})
	if c.Regs[EAX] != 0x120 {
		t.Errorf("lea = %#x", c.Regs[EAX])
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint32
		want uint32
	}{
		{ADD, 5, 3, 8},
		{SUB, 5, 3, 2},
		{AND, 0xF0, 0xFF, 0xF0},
		{OR, 0xF0, 0x0F, 0xFF},
		{XOR, 0xFF, 0x0F, 0xF0},
		{MUL, 6, 7, 42},
		{DIVOP, 42, 5, 8},
		{MODOP, 42, 5, 2},
		{SHL, 1, 4, 16},
		{SHR, 16, 4, 1},
		{SUB, 3, 5, 0xFFFFFFFE}, // wraparound
	}
	for _, tc := range cases {
		c := runProgram(t, []Instr{
			{Op: MOV, A: R(EAX), B: Imm(tc.a)},
			{Op: tc.op, A: R(EAX), B: Imm(tc.b)},
			{Op: HLT},
		})
		if c.Regs[EAX] != tc.want {
			t.Errorf("%v %d,%d = %d, want %d", tc.op, tc.a, tc.b, c.Regs[EAX], tc.want)
		}
	}
}

func TestUnaryOps(t *testing.T) {
	cases := []struct {
		op   Op
		a    uint32
		want uint32
	}{
		{NOT, 0, 0xFFFFFFFF},
		{NEG, 1, 0xFFFFFFFF},
		{INC, 41, 42},
		{DEC, 43, 42},
	}
	for _, tc := range cases {
		c := runProgram(t, []Instr{
			{Op: MOV, A: R(EAX), B: Imm(tc.a)},
			{Op: tc.op, A: R(EAX)},
			{Op: HLT},
		})
		if c.Regs[EAX] != tc.want {
			t.Errorf("%v %d = %d, want %d", tc.op, tc.a, c.Regs[EAX], tc.want)
		}
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	c := NewCPU()
	c.Code.Add(NewSpan(0x1000, "t", []Instr{
		{Op: MOV, A: R(EAX), B: Imm(1)},
		{Op: DIVOP, A: R(EAX), B: Imm(0)},
	}, nil))
	c.EIP = 0x1000
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	err := c.Step()
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if f.PC != 0x1004 {
		t.Errorf("fault PC = %#x", f.PC)
	}
}

func TestConditionalJumps(t *testing.T) {
	// For each comparison, run: cmp a, b ; jcc taken ; mov eax, 0 ;
	// hlt ; taken: mov eax, 1 ; hlt
	mk := func(jcc Op, a, b uint32) uint32 {
		c := runProgram(t, []Instr{
			{Op: MOV, A: R(ECX), B: Imm(a)},
			{Op: CMP, A: R(ECX), B: Imm(b)},
			{Op: jcc, A: Imm(0x1000 + 5*InstrSize)},
			{Op: MOV, A: R(EAX), B: Imm(0)},
			{Op: HLT},
			{Op: MOV, A: R(EAX), B: Imm(1)},
			{Op: HLT},
		})
		return c.Regs[EAX]
	}
	type tc struct {
		op    Op
		a, b  uint32
		taken uint32
	}
	neg2 := uint32(0xFFFFFFFE) // -2 signed
	cases := []tc{
		{JZ, 5, 5, 1}, {JZ, 5, 6, 0},
		{JNZ, 5, 6, 1}, {JNZ, 5, 5, 0},
		{JL, 3, 5, 1}, {JL, 5, 3, 0}, {JL, neg2, 1, 1},
		{JLE, 5, 5, 1}, {JLE, 6, 5, 0},
		{JG, 5, 3, 1}, {JG, 3, 5, 0}, {JG, 1, neg2, 1},
		{JGE, 5, 5, 1}, {JGE, 4, 5, 0},
	}
	for _, c := range cases {
		if got := mk(c.op, c.a, c.b); got != c.taken {
			t.Errorf("%v with %d,%d: taken=%d, want %d", c.op, c.a, c.b, got, c.taken)
		}
	}
}

func TestUnconditionalJmp(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: JMP, A: Imm(0x1000 + 2*InstrSize)},
		{Op: MOV, A: R(EAX), B: Imm(99)}, // skipped
		{Op: HLT},
	})
	if c.Regs[EAX] != 0 {
		t.Error("jmp did not skip")
	}
}

func TestJmpIndirectRegister(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: MOV, A: R(EAX), B: Imm(0x1000 + 3*InstrSize)},
		{Op: JMP, A: R(EAX)},
		{Op: MOV, A: R(EBX), B: Imm(1)}, // skipped
		{Op: HLT},
	})
	if c.Regs[EBX] != 0 {
		t.Error("indirect jmp failed")
	}
}

func TestPushPop(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: PUSH, A: Imm(0x11)},
		{Op: PUSH, A: Imm(0x22)},
		{Op: POP, A: R(EAX)},
		{Op: POP, A: R(EBX)},
		{Op: HLT},
	})
	if c.Regs[EAX] != 0x22 || c.Regs[EBX] != 0x11 {
		t.Errorf("LIFO violated: %#x %#x", c.Regs[EAX], c.Regs[EBX])
	}
	if c.Regs[ESP] != 0x00100000 {
		t.Errorf("esp not restored: %#x", c.Regs[ESP])
	}
}

func TestCallRet(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: CALL, A: Imm(0x1000 + 3*InstrSize)}, // call f
		{Op: MOV, A: R(EBX), B: Imm(5)},          // after return
		{Op: HLT},
		{Op: MOV, A: R(EAX), B: Imm(9)}, // f:
		{Op: RET},
	})
	if c.Regs[EAX] != 9 || c.Regs[EBX] != 5 {
		t.Errorf("call/ret: eax=%d ebx=%d", c.Regs[EAX], c.Regs[EBX])
	}
}

func TestCPUIDAndRDTSC(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: CPUID},
		{Op: HLT},
	})
	if c.Regs[EAX] == 0 || c.Regs[EBX] == 0 || c.Regs[ECX] == 0 || c.Regs[EDX] == 0 {
		t.Error("cpuid left zero registers")
	}
	c2 := runProgram(t, []Instr{
		{Op: NOP}, {Op: NOP},
		{Op: RDTSC},
		{Op: HLT},
	})
	if c2.Regs[EAX] != 3 {
		t.Errorf("rdtsc = %d, want 3 (steps including itself)", c2.Regs[EAX])
	}
}

type fakeOS struct {
	calls []uint32
	fn    func(c *CPU)
}

func (f *fakeOS) Syscall(c *CPU) {
	f.calls = append(f.calls, c.Regs[EAX])
	if f.fn != nil {
		f.fn(c)
	}
}

func TestIntInvokesSyscall(t *testing.T) {
	os := &fakeOS{fn: func(c *CPU) { c.Regs[EAX] = 123 }}
	c := NewCPU()
	c.Sys = os
	c.Code.Add(NewSpan(0x1000, "t", []Instr{
		{Op: MOV, A: R(EAX), B: Imm(4)},
		{Op: INT, A: Imm(0x80)},
		{Op: HLT},
	}, nil))
	c.EIP = 0x1000
	c.Regs[ESP] = 0x100000
	for !c.Halted {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(os.calls) != 1 || os.calls[0] != 4 {
		t.Errorf("syscalls = %v", os.calls)
	}
	if c.Regs[EAX] != 123 {
		t.Error("syscall result not visible")
	}
}

func TestIntWithoutOSFaults(t *testing.T) {
	c := NewCPU()
	c.Code.Add(NewSpan(0x1000, "t", []Instr{{Op: INT, A: Imm(0x80)}}, nil))
	c.EIP = 0x1000
	if err := c.Step(); err == nil {
		t.Error("int without OS did not fault")
	}
}

func TestSyscallSetPC(t *testing.T) {
	os := &fakeOS{}
	os.fn = func(c *CPU) { c.SetPC(0x1000 + 3*InstrSize) }
	c := NewCPU()
	c.Sys = os
	c.Code.Add(NewSpan(0x1000, "t", []Instr{
		{Op: INT, A: Imm(0x80)},
		{Op: MOV, A: R(EAX), B: Imm(1)}, // skipped by SetPC
		{Op: HLT},
		{Op: MOV, A: R(EBX), B: Imm(2)},
		{Op: HLT},
	}, nil))
	c.EIP = 0x1000
	c.Regs[ESP] = 0x100000
	for !c.Halted {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Regs[EAX] != 0 || c.Regs[EBX] != 2 {
		t.Errorf("SetPC not honored: eax=%d ebx=%d", c.Regs[EAX], c.Regs[EBX])
	}
}

func TestNativeRoutine(t *testing.T) {
	c := NewCPU()
	c.Natives = []Native{{Name: "magic", Fn: func(c *CPU) { c.Regs[EAX] = 77 }}}
	var pre, post []string
	c.Hooks.OnNativePre = func(_ *CPU, n string) { pre = append(pre, n) }
	c.Hooks.OnNativePost = func(_ *CPU, n string) { post = append(post, n) }
	c.Code.Add(NewSpan(0x1000, "app", []Instr{
		{Op: CALL, A: Imm(0x5000)},
		{Op: HLT},
	}, nil))
	c.Code.Add(NewSpan(0x5000, "lib.so", []Instr{
		{Op: NATIVE, Native: 0},
	}, map[int]string{0: "magic"}))
	c.EIP = 0x1000
	c.Regs[ESP] = 0x100000
	for !c.Halted {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Regs[EAX] != 77 {
		t.Error("native did not run")
	}
	if len(pre) != 1 || pre[0] != "magic" || len(post) != 1 {
		t.Errorf("hooks: pre=%v post=%v", pre, post)
	}
}

func TestFetchFaultHalts(t *testing.T) {
	c := NewCPU()
	c.EIP = 0xDEAD0000
	err := c.Step()
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if !c.Halted {
		t.Error("fault did not halt")
	}
	if err := c.Step(); err != ErrHalted {
		t.Errorf("second step = %v, want ErrHalted", err)
	}
}

func TestBBHookCounts(t *testing.T) {
	// loop: dec eax ; jnz loop ; hlt — with eax=3 the loop BB runs 3
	// times and the hlt BB once.
	c := NewCPU()
	counts := map[uint32]int{}
	c.Hooks.OnBB = func(_ *CPU, s *Span, leader int) {
		counts[s.Addr(leader)]++
	}
	c.Code.Add(NewSpan(0x1000, "t", []Instr{
		{Op: MOV, A: R(EAX), B: Imm(3)},
		{Op: DEC, A: R(EAX)}, // loop:
		{Op: JNZ, A: Imm(0x1004)},
		{Op: HLT},
	}, nil))
	c.EIP = 0x1000
	for !c.Halted {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if counts[0x1000] != 1 {
		t.Errorf("entry BB count = %d, want 1", counts[0x1000])
	}
	if counts[0x1004] != 3 {
		t.Errorf("loop BB count = %d, want 3", counts[0x1004])
	}
	if counts[0x100C] != 1 {
		t.Errorf("hlt BB count = %d, want 1", counts[0x100C])
	}
}

func TestInstrHookSeesEveryInstruction(t *testing.T) {
	c := NewCPU()
	var seen []Op
	c.Hooks.OnInstr = func(_ *CPU, s *Span, idx int) {
		seen = append(seen, s.Instrs[idx].Op)
	}
	c.Code.Add(NewSpan(0x1000, "t", []Instr{
		{Op: MOV, A: R(EAX), B: Imm(1)},
		{Op: INC, A: R(EAX)},
		{Op: HLT},
	}, nil))
	c.EIP = 0x1000
	for !c.Halted {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want := []Op{MOV, INC, HLT}
	if len(seen) != len(want) {
		t.Fatalf("seen %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("seen[%d] = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	c := NewCPU()
	c.Regs[EAX] = 5
	c.EIP = 0x1000
	cl := c.Clone()
	cl.Regs[EAX] = 9
	if c.Regs[EAX] != 5 {
		t.Error("clone register leaked")
	}
	if cl.EIP != 0x1000 {
		t.Error("clone EIP wrong")
	}
}

func TestCmpDoesNotWrite(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: MOV, A: R(EAX), B: Imm(5)},
		{Op: CMP, A: R(EAX), B: Imm(3)},
		{Op: HLT},
	})
	if c.Regs[EAX] != 5 {
		t.Error("cmp modified its operand")
	}
}

func TestTestSetsZF(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: MOV, A: R(EAX), B: Imm(0xF0)},
		{Op: TEST, A: R(EAX), B: Imm(0x0F)},
		{Op: JZ, A: Imm(0x1000 + 5*InstrSize)},
		{Op: MOV, A: R(EBX), B: Imm(1)},
		{Op: HLT},
		{Op: MOV, A: R(EBX), B: Imm(2)},
		{Op: HLT},
	})
	if c.Regs[EBX] != 2 {
		t.Errorf("test/jz: ebx = %d", c.Regs[EBX])
	}
}

func TestFaultErrorString(t *testing.T) {
	f := &Fault{PC: 0x1000, Reason: "bad"}
	if f.Error() != "isa: fault at 0x1000: bad" {
		t.Errorf("Error() = %q", f.Error())
	}
}

func TestJmpIndirectThroughMemory(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: MOV, A: Mem(0x2000), B: Imm(0x1000 + 3*InstrSize)},
		{Op: JMP, A: Mem(0x2000)},
		{Op: MOV, A: R(EAX), B: Imm(1)}, // skipped
		{Op: HLT},
	})
	if c.Regs[EAX] != 0 {
		t.Error("indirect-through-memory jmp failed")
	}
}

func TestMovbMemToMem(t *testing.T) {
	c := runProgram(t, []Instr{
		{Op: MOV, A: Mem(0x2000), B: Imm(0x11223344)},
		{Op: MOVB, A: Mem(0x3000), B: Mem(0x2001)},
		{Op: MOV, A: R(EAX), B: Mem(0x3000)},
		{Op: HLT},
	})
	if c.Regs[EAX] != 0x33 {
		t.Errorf("movb mem,mem = %#x", c.Regs[EAX])
	}
}

func TestLEARequiresMemorySource(t *testing.T) {
	c := NewCPU()
	c.Code.Add(NewSpan(0x1000, "t", []Instr{
		{Op: LEA, A: R(EAX), B: R(EBX)},
	}, nil))
	c.EIP = 0x1000
	if err := c.Step(); err == nil {
		t.Error("lea reg,reg did not fault")
	}
}

func TestWriteToImmediateFaults(t *testing.T) {
	c := NewCPU()
	c.Code.Add(NewSpan(0x1000, "t", []Instr{
		{Op: MOV, A: Imm(5), B: R(EAX)},
	}, nil))
	c.EIP = 0x1000
	if err := c.Step(); err == nil {
		t.Error("write to immediate did not fault")
	}
}
