#!/bin/sh
# benchgate.sh — the observability overhead gate. The event bus is
# designed so an unobserved run pays one nil-check per publish site and
# allocates nothing; this gate holds that promise two ways:
#
#   1. allocs/op ceiling (deterministic): BenchmarkPerfMemFullDataflow
#      executes ~294k guest instructions per op, so even one stray
#      allocation per event site blows the count by orders of
#      magnitude. This catches hot-path allocation regressions exactly,
#      independent of host load.
#   2. guest-instrs/s floor (wall clock): the best of several short
#      runs must stay above the recorded benchgate baseline minus the
#      tolerance. The baseline is deliberately conservative (see the
#      "benchgate" section of BENCH_<date>.json) because shared hosts
#      jitter far more than a few percent; this tier catches gross
#      regressions such as an unconditional publish on the hot path.
#      For precise deltas, A/B the benchmark against main on a quiet
#      machine with HTH_BENCHGATE_BASELINE/HTH_BENCHGATE_TOLERANCE.
#
# Knobs (environment):
#   HTH_BENCHGATE_BASELINE   baseline guest-instrs/s (default: the
#                            benchgate.baseline_instrs_per_sec value of
#                            the newest BENCH_*.json)
#   HTH_BENCHGATE_TOLERANCE  allowed regression, percent (default 10)
#   HTH_BENCHGATE_MAXALLOCS  allocs/op ceiling (default 500)
#   HTH_BENCHGATE_RUNS       benchmark repetitions; best wins (default 3)
#   HTH_BENCHGATE_BENCHTIME  go test -benchtime per run (default 1s)
#   HTH_BENCHGATE_SPARSE_FLOOR  guest-instrs/s floor for the sparse-
#                            taint (clean tier) benchmark (default: the
#                            benchgate.sparse_instrs_per_sec_floor value
#                            of the newest BENCH_*.json; absent = skip)
set -eu

cd "$(dirname "$0")/.."

tolerance=${HTH_BENCHGATE_TOLERANCE:-10}
maxallocs=${HTH_BENCHGATE_MAXALLOCS:-500}
runs=${HTH_BENCHGATE_RUNS:-3}
benchtime=${HTH_BENCHGATE_BENCHTIME:-1s}

newest=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1)
baseline=${HTH_BENCHGATE_BASELINE:-}
if [ -z "$baseline" ]; then
    if [ -z "$newest" ]; then
        echo "benchgate: no BENCH_*.json baseline found; set HTH_BENCHGATE_BASELINE" >&2
        exit 1
    fi
    baseline=$(sed -n 's/.*"baseline_instrs_per_sec_floor": *\([0-9][0-9]*\).*/\1/p' "$newest" | head -n 1)
    if [ -z "$baseline" ]; then
        echo "benchgate: $newest has no benchgate.baseline_instrs_per_sec_floor" >&2
        exit 1
    fi
    echo "benchgate: baseline $baseline guest-instrs/s (from $newest)"
fi

out=$(go test -run '^$' -bench BenchmarkPerfMemFullDataflow -benchmem \
    -benchtime "$benchtime" -count "$runs" .)
echo "$out"

echo "$out" | awk -v best=0 -v allocs=0 -v base="$baseline" -v tol="$tolerance" \
    -v maxallocs="$maxallocs" '
    / guest-instrs\/s/ {
        for (i = 1; i < NF; i++) {
            if ($(i + 1) == "guest-instrs/s" && $i + 0 > best)
                best = $i + 0
            if ($(i + 1) == "allocs/op" && $i + 0 > allocs)
                allocs = $i + 0
        }
    }
    END {
        if (best == 0) {
            print "benchgate: no guest-instrs/s metric in benchmark output"
            exit 1
        }
        printf "benchgate: allocs/op %d (ceiling %d)\n", allocs, maxallocs
        if (allocs > maxallocs) {
            print "benchgate: FAIL — disabled-bus hot path gained allocations"
            exit 1
        }
        floor = base * (1 - tol / 100)
        delta = (best - base) / base * 100
        printf "benchgate: best %.0f guest-instrs/s vs baseline %.0f (%+.1f%%, floor %.0f)\n",
            best, base, delta, floor
        if (best < floor) {
            print "benchgate: FAIL — disabled-bus hot path regressed beyond tolerance"
            exit 1
        }
        print "benchgate: OK"
    }'

# Clean-tier floor: the sparse-taint workload (taint present but never
# in the hot loop's footprint) must keep its partial-instrumentation
# speedup. The floor sits above trace-tier-only throughput on the
# recording host, so a clean tier that silently stops demoting — or a
# re-instrumentation seam that flushes verdicts every block — fails the
# gate even under shared-host jitter.
sparsefloor=${HTH_BENCHGATE_SPARSE_FLOOR:-}
if [ -z "$sparsefloor" ] && [ -n "$newest" ]; then
    sparsefloor=$(sed -n 's/.*"sparse_instrs_per_sec_floor": *\([0-9][0-9]*\).*/\1/p' "$newest" | head -n 1)
fi
if [ -z "$sparsefloor" ]; then
    echo "benchgate: no sparse_instrs_per_sec_floor recorded; skipping clean-tier floor"
    exit 0
fi
echo "benchgate: sparse floor $sparsefloor guest-instrs/s"

sout=$(go test -run '^$' -bench 'BenchmarkPerfMemSparseTaint$' \
    -benchtime "$benchtime" -count "$runs" .)
echo "$sout"

echo "$sout" | awk -v best=0 -v floor="$sparsefloor" '
    / guest-instrs\/s/ {
        for (i = 1; i < NF; i++)
            if ($(i + 1) == "guest-instrs/s" && $i + 0 > best)
                best = $i + 0
    }
    END {
        if (best == 0) {
            print "benchgate: no guest-instrs/s metric in sparse benchmark output"
            exit 1
        }
        printf "benchgate: sparse best %.0f guest-instrs/s (floor %.0f)\n", best, floor
        if (best < floor) {
            print "benchgate: FAIL — clean tier lost its sparse-taint speedup"
            exit 1
        }
        print "benchgate: sparse OK"
    }'
