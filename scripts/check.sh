#!/bin/sh
# check.sh — the full pre-merge gate: vet, build, unit tests, the
# race-detector pass over the parallel corpus runner, a seeded chaos
# sweep, and a fuzz smoke over the chaos plan parser. `make check`
# invokes this script.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
# staticcheck is optional tooling: run it when installed, skip (loudly)
# when the host doesn't have it so the gate stays hermetic.
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not on PATH; skipping" >&2
fi
go build ./...
go test ./...
# Race-detector pass over the whole module: the parallel corpus runner
# and the tier promotion/demotion paths run their full test load under
# the detector.
go test -race ./...
# Robustness gate: zero-rate identity plus fault containment over the
# full corpus on a fixed seed (see cmd/hth-bench).
go run ./cmd/hth-bench -chaos 0xC0FFEE,0.05 -parallel 4 >/dev/null
# Service soak gate: concurrent tenants under a seeded service-level
# fault storm — every job terminates in a verdict or typed error, no
# lost jobs, no leaked goroutines, and corpus-through-service sweep
# signatures bit-identical to batch (see Makefile `soak`).
make soak
# Fuzz smoke: the chaos plan parser must never panic on hostile specs.
go test -fuzz=FuzzChaos -fuzztime=10s ./internal/chaos
# Trace-tier gates: the full corpus must be bit-identical with traces
# on and off (crossed with provenance), and the multi-block trace
# oracle gets a fuzz smoke beyond its checked-in corpus.
go test -run TestTraceDifferentialSweep -count=1 ./internal/corpus
go test -fuzz=FuzzTraceApply -fuzztime=10s ./internal/harrier
# Clean-tier gates: the corpus must be bit-identical with the clean
# tier off and on, the page-flip re-instrumentation seam holds under
# the chaos-delayed recv regression, and the mid-run taint-injection
# oracle gets a fuzz smoke (see Makefile `clean-tier`).
make clean-tier
# ELF frontend gate: fixture scenarios, symbolized-provenance goldens,
# decoder/pinned-layout units, the InstallSource equivalence sweep,
# and a fuzz smoke over the ELF parser (see Makefile `elf`).
make elf
# Observability overhead gate: the disabled event bus must stay one
# nil-check per publish site — no hot-path allocations, no gross
# throughput regression (see scripts/benchgate.sh).
sh scripts/benchgate.sh
# Span-tracing gate: span/summary/latency-histogram goldens, the span
# recorder under the race detector, the service span-lifecycle suite,
# and the spans-off/on differential sweep (see Makefile `spans`).
make spans
# Trace replay gate: a recorded trojandetect run must replay into the
# golden summary (determinism of the JSONL observer end to end).
make trace
