#!/bin/sh
# check.sh — the full pre-merge gate: vet, build, unit tests, and the
# race-detector pass over the parallel corpus runner. `make check`
# invokes this script.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race ./internal/corpus -run TestParallel
