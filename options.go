package hth

import (
	"io"
	"time"

	"repro/internal/chaos"
	"repro/internal/harrier"
	"repro/internal/obs"
	"repro/internal/secpert"
)

// Observer consumes the structured event stream of a run: syscall
// enter/exit with virtual timestamps, scheduler decisions, fd
// lifecycle, taint-substrate samples, BB counter rollovers, rule
// fires, warnings, and injected chaos faults. Observers are attached
// with WithObserver (or Config.Observers) and invoked synchronously in
// event order; see the obs package for the event taxonomy.
type Observer = obs.Sink

// Event is one observation delivered to an Observer.
type Event = obs.Event

// Metrics is the counters/histograms registry sink: attach one with
// WithObserver(m) and read m.Snapshot() — or Result.Metrics, which
// snapshots the first attached registry automatically.
type Metrics = obs.Metrics

// MetricsSnapshot is a JSON-ready view of a Metrics registry.
type MetricsSnapshot = obs.Snapshot

// JSONL returns an Observer streaming the run trace to w as JSON
// Lines, one event per line. Replay and filter it with
// `hth-trace -replay`.
func JSONL(w io.Writer) Observer { return obs.JSONL(w) }

// NewMetrics returns an empty metrics registry Observer. One registry
// may be shared across runs; counts accumulate.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// Sampling decimates the stream in front of sink: only every n-th
// event is forwarded.
func Sampling(n int, sink Observer) Observer { return obs.Sampling(n, sink) }

// CLIPSText returns an Observer rendering Secpert's CLIPS-style fire
// trace and warning printout to w — byte-identical to what the
// deprecated Config.Verbose writer receives.
func CLIPSText(w io.Writer) Observer { return obs.CLIPSText(w) }

// CLIPSTranscript is CLIPSText plus the Appendix-A.1 assert echo —
// byte-identical to Config.Verbose with Config.TraceAsserts set.
func CLIPSTranscript(w io.Writer) Observer { return obs.CLIPSTranscript(w) }

// Option mutates a Config under construction; see NewConfig.
type Option func(*Config)

// NewConfig is the successor of DefaultConfig-plus-field-poking: it
// starts from DefaultConfig and applies the options in order.
//
//	cfg := hth.NewConfig(
//	    hth.WithAdvisor(secpert.KillAtOrAbove(hth.High)),
//	    hth.WithObserver(hth.JSONL(f)),
//	)
func NewConfig(opts ...Option) Config {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithPolicy sets Secpert's rule configuration.
func WithPolicy(p secpert.Config) Option {
	return func(c *Config) { c.Policy = p }
}

// WithMonitor sets Harrier's instrumentation configuration.
func WithMonitor(m harrier.Config) Option {
	return func(c *Config) { c.Monitor = m }
}

// WithAdvisor sets the continue/kill advisor consulted per warning.
func WithAdvisor(a secpert.Advisor) Option {
	return func(c *Config) { c.Advisor = a }
}

// WithUnmonitored runs the guest without Harrier attached (native
// speed; the §9 baseline).
func WithUnmonitored() Option {
	return func(c *Config) { c.Unmonitored = true }
}

// WithMaxSteps caps total guest instructions.
func WithMaxSteps(n uint64) Option {
	return func(c *Config) { c.MaxSteps = n }
}

// WithChaos attaches a seeded fault-injection plan to the run.
func WithChaos(p *chaos.Plan) Option {
	return func(c *Config) { c.Chaos = p }
}

// WithDeadline bounds the run's wall-clock time; on expiry the
// scheduler stops and Result.RunErr is vos.ErrDeadline.
func WithDeadline(d time.Duration) Option {
	return func(c *Config) { c.Deadline = d }
}

// WithMaxOpenFDs caps open descriptors per guest process (negative
// disables the cap).
func WithMaxOpenFDs(n int) Option {
	return func(c *Config) { c.MaxOpenFDs = n }
}

// WithTierThreshold sets the hot-block promotion threshold of the
// tiered taint engine: a basic block whose execution counter reaches n
// is compiled into a dataflow summary and leaves the per-instruction
// interpreter tier. Zero keeps every block in the interpreter tier
// (the pre-tiering behaviour); detections are bit-identical either
// way, only throughput changes.
func WithTierThreshold(n int) Option {
	return func(c *Config) { c.Monitor.PromoteThreshold = n }
}

// WithTraceThreshold sets the second promotion threshold of the tiered
// taint engine: a summarized block whose execution counter reaches n is
// compiled into a superblock trace — chained hot blocks executed in one
// hook call with a clean-taint fast path. Zero disables the trace tier
// and caps blocks at the summary tier; detections are bit-identical
// either way, only throughput changes.
func WithTraceThreshold(n int) Option {
	return func(c *Config) { c.Monitor.TraceThreshold = n }
}

// WithCleanTier sets the demotion threshold of the clean tier, the
// fourth execution tier: a compiled block or trace whose counter
// reaches n and whose entire memory footprint resolves to taint-free
// shadow pages is proven to transfer nothing and runs uninstrumented —
// no shadow lookups, no tag unions, no per-instruction hooks. Taint
// arriving at a footprint page (a zero→nonzero shadow page flip, or a
// taint-source syscall) re-instruments affected blocks before their
// next entry, so detections are bit-identical with the tier on or off;
// only throughput changes. Zero disables the tier.
func WithCleanTier(n int) Option {
	return func(c *Config) { c.Monitor.CleanThreshold = n }
}

// WithObserver attaches one or more observers to the run's event bus.
// Repeated uses accumulate.
func WithObserver(sinks ...Observer) Option {
	return func(c *Config) { c.Observers = append(c.Observers, sinks...) }
}

// WithProvenance enables causal provenance tracing: every taint source
// gets a stable ID at entry and each warning carries the rendered
// chains of the sources behind it (Warning.Chain, Result.Provenance).
// Recording observes taint state without mutating it, so detections
// are bit-identical with tracing on or off.
func WithProvenance() Option {
	return func(c *Config) { c.Provenance = true }
}

// WithSymbolizedChains enables provenance tracing (as WithProvenance)
// and renders block hops symbolically when the owning image carries
// symbols: "bb /bin/suspect:_start+0x8" instead of "bb 0x8048008".
// Addresses no symbol covers keep the raw form. Purely presentational:
// what is recorded and detected is bit-identical either way.
func WithSymbolizedChains() Option {
	return func(c *Config) {
		c.Provenance = true
		c.Symbolize = true
	}
}

// WithFlightRecorder arms the flight recorder: a fixed-size ring
// holding the run's last n events (n <= 0 selects the default size)
// even when no other observer is attached. Read it from Result.Flight.
func WithFlightRecorder(n int) Option {
	return func(c *Config) {
		if n <= 0 {
			n = obs.DefaultFlightSize
		}
		c.FlightSize = n
	}
}

// WithFlightDump arms the flight recorder and dumps it as gzipped
// JSONL to path when the run ends with a warning, a scheduler error, a
// guest fault, or injected chaos faults. Replay the dump with
// `hth-trace -replay path`.
func WithFlightDump(path string) Option {
	return func(c *Config) { c.FlightPath = path }
}

// WithJobTag tags the run with a job identity: a flight dump armed
// with WithFlightDump(path) lands at "<path>.<tag>.jsonl.gz" instead
// of path, so pooled runs sharing a dump location each keep their own
// post-mortem. The analysis service sets this automatically from the
// job id.
func WithJobTag(tag string) Option {
	return func(c *Config) { c.JobTag = tag }
}

// WithSpans arms job-lifecycle span tracing: the run records a
// wall-clock span tree (load / instrument / execute / report, with
// per-tier execution-time children) into Result.Spans and mirrors
// span events onto the bus when observers are attached. Spans are a
// pure observer: detections and taint state are bit-identical with
// tracing on or off.
func WithSpans() Option {
	return func(c *Config) { c.Spans = true }
}

// WithIntrospection serves live run introspection over HTTP on addr
// (e.g. "127.0.0.1:8077"): /metrics in Prometheus text format,
// /events as a filterable SSE stream, /flight as the recorder dump,
// and /debug/pprof. The server keeps running after the run so the
// final state can be scraped; shut it down with
// Result.Introspection.Shutdown.
func WithIntrospection(addr string) Option {
	return func(c *Config) { c.Introspect = addr }
}

// Flight is the flight-recorder ring sink (see WithFlightRecorder).
type Flight = obs.Flight

// Provenance is the per-source causal chain recorder (see
// WithProvenance).
type Provenance = obs.Provenance

// Introspection is the live HTTP introspection server. Runs created
// with WithIntrospection expose theirs as Result.Introspection; a
// standalone instance (NewIntrospection) can be attached with
// WithObserver and started manually to serve several runs.
type Introspection = obs.Introspection

// NewIntrospection returns a standalone introspection server with its
// own flight ring, for use as a long-lived observer across runs:
// attach with WithObserver and call Start/Shutdown yourself.
func NewIntrospection() *Introspection { return obs.NewIntrospection(nil) }
